"""Exhaustive exploration of all scheduler behaviours on small grids.

The paper's correctness arguments quantify over *every* fair schedule and
every choice the scheduler makes when several rules or views match.  On a
small grid the reachable state space of that game is finite, so it can be
enumerated exactly:

* :func:`explore_state_space` builds the successor graph of canonical
  states (:mod:`repro.checking.states`) under FSYNC, SSYNC or ASYNC
  semantics, branching over every scheduler choice;
* :func:`check_terminating_exploration` then decides the two halves of
  Definition 1 over *all* executions:

  - **termination**: the successor graph contains no reachable cycle
    (every execution is finite), and
  - **coverage**: along every maximal execution, every grid node is
    eventually occupied — computed by a backward fixpoint over the DAG
    (the set of nodes *guaranteed* to be visited from a state is the
    intersection over its successors, plus the nodes occupied in the
    state itself).

This is a strictly stronger check than any number of randomized
simulations, and it is the tool used to validate the paper's ASYNC
algorithms (Table 1, SSYNC/ASYNC rows) on small grids.

For SSYNC, activating a robot that is not enabled has no effect, so the
checker only branches over non-empty subsets of *enabled* robots; for
ASYNC, a Look by a robot that is not enabled leads to a no-op Compute, so
such Looks are pruned as well.  Neither pruning removes any reachable
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.algorithm import Algorithm
from ..core.errors import StateSpaceLimitExceeded
from ..core.grid import Grid, Node
from .states import AsyncRobotState, SchedulerState, freeze_snapshot, initial_state, thaw_snapshot, world_from_state

__all__ = ["CheckResult", "explore_state_space", "check_terminating_exploration", "enumerate_reachable"]


@dataclass
class CheckResult:
    """Outcome of an exhaustive check on one (algorithm, grid, model) triple."""

    algorithm: str
    model: str
    m: int
    n: int
    states_explored: int
    terminal_states: int
    terminates: bool
    explores: bool
    counterexample: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether terminating exploration holds over all scheduler behaviours."""
        return self.terminates and self.explores

    def summary(self) -> str:
        status = "terminating exploration holds" if self.ok else f"FAILS ({self.counterexample})"
        return (
            f"{self.algorithm} on {self.m}x{self.n} [{self.model}]: {status}"
            f" ({self.states_explored} states, {self.terminal_states} terminal)"
        )


# ---------------------------------------------------------------------------
# Successor generation
# ---------------------------------------------------------------------------
def _enabled_choices(algorithm: Algorithm, grid: Grid, state: SchedulerState):
    """Per-robot distinct actions in a configuration-only state."""
    world = world_from_state(grid, state)
    choices = []
    for index, robot in enumerate(world.robots):
        actions = algorithm.distinct_actions(algorithm.matches_for_robot(world, robot))
        if actions:
            choices.append((index, actions))
    return choices


def _apply_synchronous(
    state: SchedulerState, moves: Sequence[Tuple[int, Optional[str], Optional[Tuple[int, int]]]]
) -> SchedulerState:
    """Apply simultaneous (index, new_color, world_move) updates to a state."""
    records = list(state.robots)
    for index, new_color, world_move in moves:
        record = records[index]
        pos = record.pos
        if world_move is not None:
            pos = (pos[0] + world_move[0], pos[1] + world_move[1])
        records[index] = AsyncRobotState(pos=pos, color=new_color if new_color else record.color)
    return SchedulerState.from_records(records)


def _successors_fsync(algorithm: Algorithm, grid: Grid, state: SchedulerState) -> List[SchedulerState]:
    choices = _enabled_choices(algorithm, grid, state)
    if not choices:
        return []
    successors = []
    # Branch over every combination of per-robot action choices (ties are
    # resolved by the scheduler, hence adversarially).
    for combo in product(*[actions for _, actions in choices]):
        moves = [
            (index, action.new_color, action.world_move)
            for (index, _), action in zip(choices, combo)
        ]
        successors.append(_apply_synchronous(state, moves))
    return successors


def _successors_ssync(algorithm: Algorithm, grid: Grid, state: SchedulerState) -> List[SchedulerState]:
    choices = _enabled_choices(algorithm, grid, state)
    if not choices:
        return []
    successors = []
    indices = [index for index, _ in choices]
    by_index = dict(choices)
    for size in range(1, len(indices) + 1):
        for subset in combinations(indices, size):
            for combo in product(*[by_index[index] for index in subset]):
                moves = [
                    (index, action.new_color, action.world_move)
                    for index, action in zip(subset, combo)
                ]
                successors.append(_apply_synchronous(state, moves))
    return successors


def _successors_async(algorithm: Algorithm, grid: Grid, state: SchedulerState) -> List[SchedulerState]:
    world = world_from_state(grid, state)
    successors: List[SchedulerState] = []
    for index, record in enumerate(state.robots):
        if record.phase == "idle":
            # Offer a Look only to enabled robots: a disabled robot's cycle is
            # a no-op and pruning it does not change reachable configurations.
            robot = world.robot(index)
            snapshot = world.snapshot(robot.pos, algorithm.phi)
            if not algorithm.matches_for_snapshot(snapshot, record.color):
                continue
            records = list(state.robots)
            records[index] = AsyncRobotState(
                pos=record.pos,
                color=record.color,
                phase="looked",
                snapshot=freeze_snapshot(snapshot),
            )
            successors.append(SchedulerState.from_records(records))
        elif record.phase == "looked":
            snapshot = thaw_snapshot(record.snapshot)
            matches = algorithm.matches_for_snapshot(snapshot, record.color)
            actions = algorithm.distinct_actions(matches)
            if not actions:
                records = list(state.robots)
                records[index] = AsyncRobotState(pos=record.pos, color=record.color)
                successors.append(SchedulerState.from_records(records))
                continue
            for action in actions:
                records = list(state.robots)
                records[index] = AsyncRobotState(
                    pos=record.pos,
                    color=action.new_color,
                    phase="computed",
                    pending_color=action.new_color,
                    pending_move=action.world_move,
                )
                successors.append(SchedulerState.from_records(records))
        elif record.phase == "computed":
            pos = record.pos
            if record.pending_move is not None:
                pos = (pos[0] + record.pending_move[0], pos[1] + record.pending_move[1])
            records = list(state.robots)
            records[index] = AsyncRobotState(pos=pos, color=record.color)
            successors.append(SchedulerState.from_records(records))
    return successors


_SUCCESSOR_FUNCTIONS = {
    "FSYNC": _successors_fsync,
    "SSYNC": _successors_ssync,
    "ASYNC": _successors_async,
}


def successors(algorithm: Algorithm, grid: Grid, state: SchedulerState, model: str) -> List[SchedulerState]:
    """All scheduler-reachable successor states of ``state`` under ``model``."""
    return _SUCCESSOR_FUNCTIONS[model](algorithm, grid, state)


# ---------------------------------------------------------------------------
# Reachability and the terminating-exploration check
# ---------------------------------------------------------------------------
def explore_state_space(
    algorithm: Algorithm,
    grid: Grid,
    model: str = "SSYNC",
    max_states: int = 200_000,
    start: Optional[SchedulerState] = None,
) -> Dict[SchedulerState, List[SchedulerState]]:
    """Build the successor graph of all reachable scheduler states."""
    if model not in _SUCCESSOR_FUNCTIONS:
        raise ValueError(f"unknown model {model!r}")
    root = start if start is not None else initial_state(algorithm, grid)
    graph: Dict[SchedulerState, List[SchedulerState]] = {}
    stack = [root]
    while stack:
        state = stack.pop()
        if state in graph:
            continue
        if len(graph) >= max_states:
            raise StateSpaceLimitExceeded(
                f"{algorithm.name} on {grid.m}x{grid.n} [{model}]: more than {max_states} states"
            )
        succ = successors(algorithm, grid, state, model)
        graph[state] = succ
        for nxt in succ:
            if nxt not in graph:
                stack.append(nxt)
    return graph


def enumerate_reachable(
    algorithm: Algorithm, grid: Grid, model: str = "SSYNC", max_states: int = 200_000
) -> int:
    """Number of reachable canonical states (convenience wrapper)."""
    return len(explore_state_space(algorithm, grid, model=model, max_states=max_states))


def _has_cycle(graph: Dict[SchedulerState, List[SchedulerState]]) -> bool:
    """Iterative three-color DFS cycle detection."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {state: WHITE for state in graph}
    for root in graph:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[SchedulerState, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            state, child_index = stack[-1]
            children = graph[state]
            if child_index < len(children):
                stack[-1] = (state, child_index + 1)
                child = children[child_index]
                if color[child] == GRAY:
                    return True
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[state] = BLACK
                stack.pop()
    return False


def _topological_order(graph: Dict[SchedulerState, List[SchedulerState]]) -> List[SchedulerState]:
    """Reverse-postorder DFS (valid topological order for a DAG)."""
    visited: Set[SchedulerState] = set()
    order: List[SchedulerState] = []
    for root in graph:
        if root in visited:
            continue
        stack: List[Tuple[SchedulerState, int]] = [(root, 0)]
        visited.add(root)
        while stack:
            state, child_index = stack[-1]
            children = graph[state]
            if child_index < len(children):
                stack[-1] = (state, child_index + 1)
                child = children[child_index]
                if child not in visited:
                    visited.add(child)
                    stack.append((child, 0))
            else:
                order.append(state)
                stack.pop()
    return order  # reverse postorder: children appear before parents


def check_terminating_exploration(
    algorithm: Algorithm,
    grid: Grid,
    model: str = "SSYNC",
    max_states: int = 200_000,
) -> CheckResult:
    """Exhaustively decide Definition 1 over all scheduler behaviours."""
    graph = explore_state_space(algorithm, grid, model=model, max_states=max_states)
    root = initial_state(algorithm, grid)
    terminal_states = [state for state, succ in graph.items() if not succ]

    if _has_cycle(graph):
        return CheckResult(
            algorithm=algorithm.name,
            model=model,
            m=grid.m,
            n=grid.n,
            states_explored=len(graph),
            terminal_states=len(terminal_states),
            terminates=False,
            explores=False,
            counterexample="a scheduler can drive the system into an infinite execution (cycle reached)",
        )

    all_nodes: FrozenSet[Node] = frozenset(grid.nodes())
    guaranteed: Dict[SchedulerState, FrozenSet[Node]] = {}
    for state in _topological_order(graph):  # children before parents
        occupied = frozenset(state.occupied_nodes())
        succ = graph[state]
        if not succ:
            guaranteed[state] = occupied
        else:
            common = guaranteed[succ[0]]
            for nxt in succ[1:]:
                common = common & guaranteed[nxt]
            guaranteed[state] = occupied | common

    explores = guaranteed[root] == all_nodes
    counterexample = None
    if not explores:
        missing = sorted(all_nodes - guaranteed[root])
        counterexample = f"a scheduler can keep nodes {missing} unvisited on some execution"
    return CheckResult(
        algorithm=algorithm.name,
        model=model,
        m=grid.m,
        n=grid.n,
        states_explored=len(graph),
        terminal_states=len(terminal_states),
        terminates=True,
        explores=explores,
        counterexample=counterexample,
    )
