"""Theorem 1 machinery: the SSYNC/ASYNC lower bound for phi = 1 and k = 2."""

from .refuter import AdversaryWitness, adversary_prevents_node, refute_terminating_exploration
from .candidates import candidate_two_robot_algorithms
from .theorem1 import Theorem1Report, demonstrate_theorem1

__all__ = [
    "AdversaryWitness",
    "adversary_prevents_node",
    "refute_terminating_exploration",
    "candidate_two_robot_algorithms",
    "Theorem1Report",
    "demonstrate_theorem1",
]
