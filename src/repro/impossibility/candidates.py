"""Candidate two-robot phi = 1 algorithms used to demonstrate Theorem 1.

Theorem 1 is a statement about *all* algorithms with ``k = 2`` and
``phi = 1`` under SSYNC.  The refuter of :mod:`repro.impossibility.refuter`
is exact for any single candidate; this module provides a small library of
natural candidates to feed it:

* the paper's own Algorithm 3 (``fsync_phi1_l3_chir_k2``) — a correct
  FSYNC algorithm whose guarantees Theorem 1 says cannot survive an SSYNC
  scheduler;
* a "greedy pair" sweep that tries to reproduce Algorithm 1's behaviour
  with visibility one only;
* a naive "follower" algorithm in which one robot walks and the other
  chases it.

None of these (nor any other candidate) can achieve terminating
exploration under SSYNC; the demonstration in
:mod:`repro.impossibility.theorem1` runs the refuter on each.
"""

from __future__ import annotations

from typing import Dict, List

from ..algorithms import get
from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ

__all__ = ["candidate_two_robot_algorithms"]


def _greedy_pair() -> Algorithm:
    """A 2-robot, phi = 1, 2-color sweep attempt (leader/follower pair)."""
    rules = (
        Rule("R1", W, Guard.build(1, W=occ(G), E=EMPTY), W, "E"),
        Rule("R2", G, Guard.build(1, E=occ(W)), G, "E"),
        Rule("R3", W, Guard.build(1, W=occ(G), E=WALL, S=EMPTY), W, "S"),
        Rule("R4", G, Guard.build(1, N=occ(W), E=WALL, W=EMPTY), G, "W"),
        Rule("R5", W, Guard.build(1, E=occ(G), W=EMPTY), W, "W"),
        Rule("R6", G, Guard.build(1, W=occ(W)), G, "W"),
        Rule("R7", W, Guard.build(1, E=occ(G), W=WALL, S=EMPTY), W, "S"),
        Rule("R8", G, Guard.build(1, N=occ(W), W=WALL, E=EMPTY), G, "E"),
    )

    def placement(m: int, n: int):
        return [((0, 0), G), ((0, 1), W)]

    return Algorithm(
        name="candidate_greedy_pair_phi1_k2",
        synchrony=Synchrony.SSYNC,
        phi=1,
        colors=(G, W),
        chirality=True,
        k=2,
        rules=rules,
        initial_placement=placement,
        min_m=2,
        min_n=3,
        paper_section="3 (candidate)",
        description="Candidate 2-robot phi=1 sweep used to illustrate Theorem 1",
    )


def _chaser() -> Algorithm:
    """A naive 2-robot candidate: a walker and a chaser."""
    rules = (
        Rule("R1", G, Guard.build(1, E=occ(W), W=EMPTY), G, "W"),
        Rule("R2", G, Guard.build(1, S=occ(W), N=EMPTY), G, "N"),
        Rule("R3", W, Guard.build(1, W=occ(G), E=EMPTY), W, "E"),
        Rule("R4", W, Guard.build(1, N=occ(G), S=EMPTY), W, "S"),
    )

    def placement(m: int, n: int):
        return [((0, 0), G), ((0, 1), W)]

    return Algorithm(
        name="candidate_chaser_phi1_k2",
        synchrony=Synchrony.SSYNC,
        phi=1,
        colors=(G, W),
        chirality=True,
        k=2,
        rules=rules,
        initial_placement=placement,
        min_m=2,
        min_n=3,
        paper_section="3 (candidate)",
        description="Naive walker/chaser candidate used to illustrate Theorem 1",
    )


def candidate_two_robot_algorithms() -> Dict[str, Algorithm]:
    """The candidate library, keyed by name."""
    candidates: List[Algorithm] = [
        get("fsync_phi1_l3_chir_k2"),
        _greedy_pair(),
        _chaser(),
    ]
    return {algorithm.name: algorithm for algorithm in candidates}
