"""Theorem 1: with phi = 1 and k = 2, SSYNC terminating exploration is impossible.

The theorem quantifies over all algorithms; the executable content provided
here is threefold:

1. the node-class machinery of the proof (end nodes / inner nodes and the
   requirement that the grid holds at least nine inner nodes, i.e.
   ``m, n >= 9``) lives on :class:`~repro.core.grid.Grid`;
2. an **exact refuter** (:mod:`repro.impossibility.refuter`) decides, for
   any given 2-robot phi = 1 candidate and grid, whether the adversarial
   SSYNC scheduler can keep some node unvisited forever — which is exactly
   the failure mode constructed in the paper's proof;
3. :func:`demonstrate_theorem1` runs the refuter on a library of candidate
   algorithms (including the paper's own 2-robot phi = 1 FSYNC algorithm,
   whose guarantees Theorem 1 says cannot survive SSYNC) and reports the
   witnesses; it also confirms, as a control, that the paper's 3-robot
   phi = 1 ASYNC algorithm is *not* refuted — matching the ``>= 3`` lower
   bound being tight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..algorithms import get
from ..core.grid import Grid
from .candidates import candidate_two_robot_algorithms
from .refuter import AdversaryWitness, refute_terminating_exploration

__all__ = ["Theorem1Report", "demonstrate_theorem1"]


@dataclass
class Theorem1Report:
    """Result of the Theorem 1 demonstration."""

    grid: Tuple[int, int]
    witnesses: Dict[str, Optional[AdversaryWitness]] = field(default_factory=dict)
    control: Optional[AdversaryWitness] = None
    control_name: str = ""

    @property
    def all_candidates_refuted(self) -> bool:
        """Whether every 2-robot candidate was defeated by the adversary."""
        return all(witness is not None for witness in self.witnesses.values())

    @property
    def control_survives(self) -> bool:
        """Whether the 3-robot control algorithm resisted the adversary."""
        return self.control is None

    def lines(self) -> List[str]:
        out = [f"Theorem 1 demonstration on a {self.grid[0]}x{self.grid[1]} grid (SSYNC adversary):"]
        for name, witness in self.witnesses.items():
            if witness is None:
                out.append(f"  {name}: NOT refuted (unexpected)")
            else:
                out.append(f"  {witness}")
        if self.control_name:
            status = "survives the adversary (as Table 1 claims)" if self.control_survives else "refuted (unexpected)"
            out.append(f"  control {self.control_name} (k=3): {status}")
        return out

    def __str__(self) -> str:
        return "\n".join(self.lines())


def demonstrate_theorem1(
    m: int = 4,
    n: int = 4,
    max_states: int = 200_000,
    include_control: bool = True,
) -> Theorem1Report:
    """Run the Theorem 1 demonstration.

    The proof uses grids with at least nine inner nodes (``m, n >= 9``) to
    get a clean counting argument; the refuter, being exact, usually finds
    adversary wins on much smaller grids already, which keeps the
    demonstration fast.  ``m`` and ``n`` can be raised to match the proof's
    regime.
    """
    grid = Grid(m, n)
    report = Theorem1Report(grid=(m, n))
    for name, algorithm in candidate_two_robot_algorithms().items():
        report.witnesses[name] = refute_terminating_exploration(
            algorithm, grid, model="SSYNC", max_states=max_states
        )
    if include_control:
        control = get("async_phi1_l3_chir_k3")
        report.control_name = control.name
        report.control = refute_terminating_exploration(
            control, grid, model="SSYNC", max_states=max_states
        )
    return report
