"""An exact per-candidate refuter for terminating exploration.

Theorem 1 of the paper states that with ``phi = 1`` and ``k = 2`` *no*
algorithm solves terminating exploration in SSYNC (hence ASYNC), whatever
the number of colors and the chirality assumption.  A universally
quantified statement cannot be established by simulation, but its
*operational content* can: for any **given** candidate algorithm the
adversarial scheduler of the proof wins, and on a finite grid that win is
decidable exactly.

The adversary controls every source of nondeterminism (which robots are
activated, and which matching view/rule is executed when several apply),
so "the adversary can forever prevent node ``v`` from being visited" is a
plain reachability question on the scheduler-state graph restricted to
states in which ``v`` is unoccupied:

* if the adversary can reach a **terminal** state without ever occupying
  ``v``, exploration fails (the run ends with ``v`` unvisited);
* if the adversary can reach a **cycle** without ever occupying ``v``,
  exploration fails as well (the run can be prolonged forever while
  keeping ``v`` unvisited — this is the confinement argument of the
  paper's proof, where the two robots are made to oscillate between two
  pairs of nodes).

:func:`refute_terminating_exploration` searches for such a node and
returns a witness; it is used by :mod:`repro.impossibility.theorem1` to
demonstrate Theorem 1 on concrete candidate algorithms, and by the test
suite as a sanity check that it does *not* refute the paper's own 3-robot
phi = 1 ASYNC algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.algorithm import Algorithm
from ..core.errors import StateSpaceLimitExceeded
from ..core.grid import Grid, Node
from ..engine.states import SchedulerState, initial_state
from ..engine.transition import AlgorithmTransitionSystem

__all__ = ["AdversaryWitness", "adversary_prevents_node", "refute_terminating_exploration"]


@dataclass
class AdversaryWitness:
    """Evidence that the adversary defeats a candidate algorithm."""

    algorithm: str
    model: str
    m: int
    n: int
    node: Node
    kind: str  # "terminal" or "cycle"
    states_explored: int

    def __str__(self) -> str:
        how = (
            "reaches a terminal configuration"
            if self.kind == "terminal"
            else "can run forever (confinement cycle)"
        )
        return (
            f"{self.algorithm} on {self.m}x{self.n} [{self.model}]: the adversary {how}"
            f" while node {self.node} is never visited"
        )


def adversary_prevents_node(
    algorithm: Algorithm,
    grid: Grid,
    node: Node,
    model: str = "SSYNC",
    max_states: int = 200_000,
) -> Optional[AdversaryWitness]:
    """Decide whether the adversary can keep ``node`` unvisited forever.

    Returns a witness if it can, ``None`` otherwise.  The initial
    configuration must not already occupy ``node`` (otherwise the node is
    trivially visited and ``None`` is returned).
    """
    root = initial_state(algorithm, grid)
    if node in root.occupied_nodes():
        return None

    # One transition system for the whole search, so the kernel's
    # snapshot/match memoization is shared across every expansion.
    ts = AlgorithmTransitionSystem(algorithm, grid, model)

    graph: Dict[SchedulerState, List[SchedulerState]] = {}
    on_path: Set[SchedulerState] = set()
    found: Optional[str] = None

    # Iterative DFS looking for a terminal state or a cycle within the
    # restricted (node never occupied) graph.
    visited: Set[SchedulerState] = set()
    stack: List[Tuple[SchedulerState, int]] = [(root, 0)]
    on_path.add(root)
    visited.add(root)
    # A state is terminal for the adversary if the *unrestricted* system has
    # no successor (no robot enabled); restricted-away successors do not
    # count as termination.
    while stack and found is None:
        state, child_index = stack[-1]
        if state not in graph:
            unrestricted = ts.successors(state)
            if not unrestricted:
                found = "terminal"
                break
            if len(graph) >= max_states:
                raise StateSpaceLimitExceeded(
                    f"{algorithm.name} on {grid.m}x{grid.n} [{model}]: state budget of"
                    f" {max_states} exceeded while refuting node {node}",
                    algorithm=algorithm.name,
                    model=model,
                    max_states=max_states,
                    states_explored=len(graph),
                )
            graph[state] = [
                nxt for nxt in unrestricted if node not in nxt.occupied_nodes()
            ]
        children = graph[state]
        if child_index < len(children):
            stack[-1] = (state, child_index + 1)
            child = children[child_index]
            if child in on_path:
                found = "cycle"
                break
            if child not in visited:
                visited.add(child)
                on_path.add(child)
                stack.append((child, 0))
        else:
            on_path.discard(state)
            stack.pop()

    if found is None:
        return None
    return AdversaryWitness(
        algorithm=algorithm.name,
        model=model,
        m=grid.m,
        n=grid.n,
        node=node,
        kind=found,
        states_explored=len(visited),
    )


def refute_terminating_exploration(
    algorithm: Algorithm,
    grid: Grid,
    model: str = "SSYNC",
    max_states: int = 200_000,
) -> Optional[AdversaryWitness]:
    """Find some node the adversary can keep unvisited forever, if any.

    Nodes are tried from the centre of the grid outward (inner nodes are
    the ones the proof of Theorem 1 confines the robots away from), so a
    witness is usually found quickly when one exists.
    """
    center = ((grid.m - 1) / 2.0, (grid.n - 1) / 2.0)
    nodes = sorted(
        grid.nodes(),
        key=lambda node: abs(node[0] - center[0]) + abs(node[1] - center[1]),
    )
    for node in nodes:
        witness = adversary_prevents_node(algorithm, grid, node, model=model, max_states=max_states)
        if witness is not None:
            return witness
    return None
