"""Verification-as-a-service: the HTTP/JSON front end over the engine.

ROADMAP item 2's always-on story: the library stack already serves a
(algorithm, model, grid, reduction, kernel, budget, seed) tuple checked
once from disk at memcache speed (:mod:`repro.engine.store`), fans fresh
work across pools and TCP fleets (:mod:`repro.engine.backend`), and
survives coordinator crashes via the resume journal
(:mod:`repro.engine.journal`).  What consumers still had to do was import
the library.  This module is the network boundary: a stdlib-only threaded
HTTP server exposing those layers as JSON endpoints, so "is this
algorithm correct on this grid" becomes one ``curl``.

Endpoints
=========
``POST /v1/check``
    One exhaustive check.  Spec in, verdict out; store-backed, so a warm
    hit returns without touching the engine (the response's
    ``observability.store_stats.outcome`` says which happened).
``POST /v1/explore``
    One exploration; returns the graph *summary* (state/terminal counts),
    cached under the library's exploration key.
``POST /v1/campaigns``
    Submit a task list or a named campaign shape.  Returns a
    content-addressed campaign id — equal submissions map to the same id,
    the same journal file, and therefore the same resumable run.
``GET /v1/campaigns/<id>``
    Status snapshot (state, completed/total, resumed count, failures).
``GET /v1/campaigns/<id>/events``
    NDJSON stream of per-task progress (``?since=N`` resumes a cursor).
    The stream replays completed events first, then follows the live run
    until its terminal ``done``/``error`` event.
``GET /v1/stats``
    Store hit/miss/coalesce counters, backend parallelism and wire stats,
    rate-limiter counters, per-endpoint request counts.
``GET /healthz``
    Liveness (never rate-limited).

Cross-cutting semantics
=======================
* **Shared store keys.**  Request payloads resolve through
  :mod:`repro.engine.spec` — the same module the library routes build
  their verdict-store keys with — so an HTTP check and a library
  ``check_terminating_exploration`` of the same spec address the same
  stored verdict, byte-identical modulo the ``compare=False``
  observability channels.
* **Validation.**  Malformed specs are 400s whose body names the
  offending field (:class:`~repro.engine.spec.SpecError`); a tripped
  state budget is a 422 naming ``max_states``.
* **Rate limiting.**  A per-client token bucket
  (:mod:`repro.service.rate_limit`) guards every ``/v1`` endpoint; a
  rejected request gets 429 plus a ``Retry-After`` header.
* **Resume on restart.**  Campaign runs execute through
  ``ParallelCampaignEngine.run_tasks(journal=...)`` with a per-campaign
  journal under ``--journal``; a server killed mid-campaign and
  restarted on the same journal directory resumes a resubmitted campaign
  from the journaled verdicts (reported per task as ``resumed: true``)
  and recomputes only the remainder — PR 7's kill/resume guarantee,
  surfaced over HTTP.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import StateSpaceLimitExceeded
from ..core.grid import Grid
from ..engine.campaign import ParallelCampaignEngine
from ..engine.journal import CampaignJournal
from ..engine.spec import (
    SpecError,
    campaign_id,
    canonical_json,
    exploration_payload,
    parse_campaign,
    parse_check_spec,
    result_payload,
)
from ..engine.store import VerdictStore
from .rate_limit import TokenBucketLimiter

__all__ = [
    "CampaignRun",
    "VerificationService",
    "VerificationServer",
    "ServiceHandler",
    "build_server",
    "start_in_thread",
]

#: Bound on request bodies; campaign submissions are specs, not payloads.
MAX_BODY_BYTES = 1 << 20

#: Seconds an idle event stream waits before emitting a keepalive ping.
EVENT_PING_INTERVAL = 15.0


class CampaignRun:
    """One submitted campaign: tasks, per-task events, final reports."""

    def __init__(self, run_id: str, algorithm: str, tasks: Sequence) -> None:
        self.id = run_id
        self.algorithm = algorithm
        self.tasks = list(tasks)
        self.state = "running"
        self.results: List[Optional[object]] = [None] * len(self.tasks)
        self.completed = 0
        self.resumed = 0
        self.error: Optional[str] = None
        self.created = time.time()
        self.finished: Optional[float] = None
        self._events: List[Dict[str, object]] = []
        self._cond = threading.Condition()

    # -- producer side (the executor thread) ----------------------------
    def record(self, index: int, report, *, resumed: bool) -> None:
        """Commit one completed task and publish its progress event."""
        payload = result_payload(report)
        with self._cond:
            self.results[index] = report
            self.completed += 1
            if resumed:
                self.resumed += 1
            self._events.append(
                {
                    "event": "task",
                    "seq": len(self._events),
                    "index": index,
                    "resumed": resumed,
                    "ok": bool(report.ok),
                    "report": payload,
                }
            )
            self._cond.notify_all()

    def finish(self) -> None:
        with self._cond:
            self.state = "done"
            self.finished = time.time()
            self._events.append(
                {
                    "event": "done",
                    "seq": len(self._events),
                    "ok": self.ok,
                    "completed": self.completed,
                    "total": len(self.tasks),
                    "resumed": self.resumed,
                    "failures": self.failures,
                }
            )
            self._cond.notify_all()

    def fail(self, error: BaseException) -> None:
        with self._cond:
            self.state = "failed"
            self.finished = time.time()
            self.error = f"{type(error).__name__}: {error}"
            self._events.append({"event": "error", "seq": len(self._events), "error": self.error})
            self._cond.notify_all()

    # -- consumer side ---------------------------------------------------
    @property
    def ok(self) -> Optional[bool]:
        """Whether every report succeeded; ``None`` while running/failed."""
        if self.state == "done":
            return all(report.ok for report in self.results)
        return None

    @property
    def failures(self) -> int:
        return sum(1 for report in self.results if report is not None and not report.ok)

    def status(self) -> Dict[str, object]:
        with self._cond:
            elapsed = (self.finished or time.time()) - self.created
            return {
                "id": self.id,
                "algorithm": self.algorithm,
                "state": self.state,
                "total": len(self.tasks),
                "completed": self.completed,
                "resumed": self.resumed,
                "failures": self.failures,
                "ok": self.ok,
                "error": self.error,
                "events": len(self._events),
                "elapsed_s": elapsed,
                "location": f"/v1/campaigns/{self.id}",
                "events_location": f"/v1/campaigns/{self.id}/events",
            }

    def wait_events(self, since: int, timeout: float) -> Tuple[List[Dict[str, object]], bool]:
        """``(events beyond since, run-is-terminal)`` after at most ``timeout``."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self._events) <= since and self.state == "running":
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return list(self._events[since:]), self.state != "running"


class VerificationService:
    """The framework-free core the HTTP handler dispatches into.

    ``store`` backs every check/explore/campaign request (may be ``None``
    — the service still works, it just recomputes).  Exactly one of
    ``pool`` / ``backend`` routes fresh explorations; both ``None`` runs
    serial in-process.  ``journal_dir`` enables durable, resumable
    campaign runs.  ``wave_delay`` inserts a pause between campaign
    dispatch waves — a deterministic throttle the kill/resume tests (and
    nothing else) rely on.
    """

    def __init__(
        self,
        store: Optional[VerdictStore] = None,
        *,
        pool=None,
        backend=None,
        backend_kind: str = "serial",
        journal_dir=None,
        rate: Optional[float] = None,
        burst: int = 20,
        wave_delay: float = 0.0,
        clock=time.monotonic,
    ) -> None:
        if pool is not None and backend is not None:
            raise ValueError("pass a pool or a backend, not both")
        self.store = store
        self.pool = pool
        self.backend = backend
        self.backend_kind = backend_kind
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        if self.journal_dir is not None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.limiter = TokenBucketLimiter(rate, burst, clock=clock)
        self.wave_delay = wave_delay
        # chunksize=1 keeps the dispatch wave at the backend's parallelism,
        # which is the event-stream granularity (serial => one event per
        # completed task).
        self.engine = ParallelCampaignEngine(
            pool=pool, backend=backend, store=store, chunksize=1,
            workers=1 if pool is None and backend is None else None,
        )
        self.campaigns: Dict[str, CampaignRun] = {}
        self._lock = threading.Lock()
        self.started = time.time()
        self.requests: Dict[str, int] = {}

    # -- bookkeeping -----------------------------------------------------
    def count_request(self, endpoint: str) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def _route_kwargs(self) -> Dict[str, object]:
        if self.pool is not None:
            return {"pool": self.pool}
        if self.backend is not None:
            return {"backend": self.backend}
        return {}

    # -- single-shot endpoints -------------------------------------------
    def check(self, payload: object) -> Dict[str, object]:
        """``POST /v1/check``: one exhaustive check through the store."""
        from ..algorithms import registry
        from ..checking.model_checker import check_terminating_exploration

        spec = parse_check_spec(payload)
        algorithm = registry.get(spec.algorithm)
        started = time.perf_counter()
        result = check_terminating_exploration(
            algorithm,
            Grid(spec.m, spec.n),
            model=spec.model,
            max_states=spec.max_states,
            reduction=spec.reduction,
            kernel=spec.kernel,
            store=self.store,
            **self._route_kwargs(),
        )
        body = result_payload(result)
        body["spec"] = dataclasses.asdict(spec)
        body["elapsed_s"] = time.perf_counter() - started
        return body

    def explore(self, payload: object) -> Dict[str, object]:
        """``POST /v1/explore``: one exploration, summary out."""
        from ..algorithms import registry
        from ..engine.sharded import explore_sharded

        spec = parse_check_spec(payload)
        algorithm = registry.get(spec.algorithm)
        started = time.perf_counter()
        exploration = explore_sharded(
            algorithm,
            Grid(spec.m, spec.n),
            spec.model,
            reduction=spec.reduction,
            max_states=spec.max_states,
            kernel=spec.kernel,
            store=self.store,
            **self._route_kwargs(),
        )
        body = exploration_payload(exploration)
        body["spec"] = dataclasses.asdict(spec)
        body["elapsed_s"] = time.perf_counter() - started
        return body

    # -- campaigns --------------------------------------------------------
    def submit_campaign(self, payload: object) -> Tuple[Dict[str, object], bool]:
        """``POST /v1/campaigns``: ``(status, created)``.

        Submission is idempotent by content: an id already registered —
        running or done — is returned as-is rather than re-executed (its
        verdicts were journaled and stored the first time around).
        """
        algorithm, tasks = parse_campaign(payload)
        run_id = campaign_id(algorithm, tasks)
        with self._lock:
            existing = self.campaigns.get(run_id)
            if existing is not None and existing.state != "failed":
                return existing.status(), False
            run = CampaignRun(run_id, algorithm, tasks)
            self.campaigns[run_id] = run
        thread = threading.Thread(
            target=self._execute_campaign, args=(run,), name=f"campaign-{run_id}", daemon=True
        )
        thread.start()
        return run.status(), True

    def _execute_campaign(self, run: CampaignRun) -> None:
        """Run one campaign wave-by-wave, journaling and publishing events."""
        from ..algorithms import registry

        journal = None
        try:
            algorithm = registry.get(run.algorithm)
            results: List[Optional[object]] = [None] * len(run.tasks)
            if self.journal_dir is not None:
                journal = CampaignJournal(self.journal_dir / f"campaign-{run.id}.journal")
                # Replay verdicts a previous (possibly killed) server
                # already computed for this campaign id — the resume path.
                for index, task in enumerate(run.tasks):
                    cached = journal.get(CampaignJournal.task_key(task))
                    if cached is not None:
                        results[index] = cached
                        run.record(index, cached, resumed=True)
            pending = [index for index, report in enumerate(results) if report is None]
            width = max(1, self.engine.workers)
            for start in range(0, len(pending), width):
                wave = pending[start : start + width]
                reports = self.engine.run_tasks(
                    algorithm,
                    [run.tasks[index] for index in wave],
                    journal=journal,
                    resume=True,
                    store=self.store,
                )
                for index, report in zip(wave, reports):
                    results[index] = report
                    run.record(index, report, resumed=False)
                if self.wave_delay and start + width < len(pending):
                    time.sleep(self.wave_delay)
            run.finish()
        except BaseException as exc:  # noqa: BLE001 - published, not swallowed
            run.fail(exc)
        finally:
            if journal is not None:
                journal.close()

    def campaign(self, run_id: str) -> Optional[CampaignRun]:
        with self._lock:
            return self.campaigns.get(run_id)

    def iter_campaign_events(self, run: CampaignRun, since: int = 0) -> Iterator[Dict[str, object]]:
        """Replay events from ``since``, then follow the live run to its end."""
        cursor = since
        while True:
            events, terminal = run.wait_events(cursor, timeout=EVENT_PING_INTERVAL)
            for event in events:
                yield event
            cursor += len(events)
            if events and events[-1]["event"] in ("done", "error"):
                return
            if terminal and not events:
                # Subscribed past the end of a finished run: re-send the
                # terminal snapshot so the stream still closes cleanly.
                yield {"event": "done", "seq": cursor, **{
                    key: value for key, value in run.status().items()
                    if key in ("ok", "completed", "total", "resumed", "failures", "state")
                }}
                return
            if not events:
                yield {"event": "ping", "seq": cursor}

    # -- stats ------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            campaigns = list(self.campaigns.values())
            requests = dict(self.requests)
        backend_stats = getattr(self.backend, "stats", None)
        return {
            "service": {
                "uptime_s": time.time() - self.started,
                "requests": requests,
                "campaigns": {
                    "total": len(campaigns),
                    "running": sum(1 for run in campaigns if run.state == "running"),
                    "done": sum(1 for run in campaigns if run.state == "done"),
                    "failed": sum(1 for run in campaigns if run.state == "failed"),
                },
            },
            "store": self.store.stats if self.store is not None else None,
            "backend": {
                "kind": self.backend_kind,
                "parallelism": self.engine.workers,
                "stats": dict(backend_stats) if isinstance(backend_stats, dict) else None,
            },
            "rate_limiter": self.limiter.stats,
        }

    def close(self) -> None:
        """Release the execution resources the service owns."""
        if self.pool is not None:
            self.pool.close()
        if self.backend is not None:
            self.backend.close()
        if self.store is not None:
            self.store.close()


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------
class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into a :class:`VerificationService`.

    HTTP/1.0 framing on purpose: the event stream is delimited by
    connection close, so no chunked-encoding machinery is needed on
    either side (the stdlib client reads lines until EOF).
    """

    server_version = "repro-verification-service"
    protocol_version = "HTTP/1.0"

    @property
    def service(self) -> VerificationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover - logging nicety
            super().log_message(format, *args)

    # -- plumbing ---------------------------------------------------------
    def _send_json(self, code: int, body: Dict[str, object], headers: Optional[Dict[str, str]] = None):
        data = (canonical_json(body) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _error(self, code: int, message: str, field: Optional[str] = None, **headers) -> None:
        error: Dict[str, object] = {"message": message}
        if field is not None:
            error["field"] = field
        self._send_json(code, {"error": error}, headers=headers or None)

    def _client_key(self) -> str:
        return self.headers.get("X-Client-Id") or self.client_address[0]

    def _admit(self) -> bool:
        decision = self.service.limiter.check(self._client_key())
        if decision.allowed:
            return True
        self._error(
            429,
            "rate limit exceeded; retry after the indicated delay",
            **{"Retry-After": str(int(decision.retry_after))},
        )
        return False

    def _read_payload(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise SpecError("body", f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("body", "request body is empty; expected a JSON object")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError("body", f"request body is not valid JSON: {exc}") from None

    # -- routing ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.split("?", 1)[0].rstrip("/")
        if path not in ("/v1/check", "/v1/explore", "/v1/campaigns"):
            self._error(404, f"unknown endpoint {path!r}")
            return
        self.service.count_request(f"POST {path}")
        if not self._admit():
            return
        try:
            payload = self._read_payload()
            if path == "/v1/check":
                self._send_json(200, self.service.check(payload))
            elif path == "/v1/explore":
                self._send_json(200, self.service.explore(payload))
            else:
                status, created = self.service.submit_campaign(payload)
                self._send_json(202 if created else 200, status)
        except SpecError as exc:
            self._error(400, str(exc), field=exc.field)
        except StateSpaceLimitExceeded as exc:
            self._error(422, f"state budget tripped: {exc}", field="max_states")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - boundary: never kill the thread
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            # Liveness is exempt from rate limiting: orchestration probes
            # must never be starved by tenant traffic.
            self.service.count_request("GET /healthz")
            self._send_json(200, {"ok": True, "uptime_s": time.time() - self.service.started})
            return
        if path == "/v1/stats":
            self.service.count_request("GET /v1/stats")
            if self._admit():
                self._send_json(200, self.service.stats())
            return
        if path.startswith("/v1/campaigns/"):
            parts = path.split("/")
            # /v1/campaigns/<id> or /v1/campaigns/<id>/events
            if len(parts) == 4 or (len(parts) == 5 and parts[4] == "events"):
                self._campaign_get(parts[3], streaming=len(parts) == 5, query=query)
                return
        self._error(404, f"unknown endpoint {path!r}")

    def _campaign_get(self, run_id: str, *, streaming: bool, query: str) -> None:
        endpoint = "GET /v1/campaigns/<id>/events" if streaming else "GET /v1/campaigns/<id>"
        self.service.count_request(endpoint)
        if not self._admit():
            return
        run = self.service.campaign(run_id)
        if run is None:
            self._error(
                404,
                f"unknown campaign {run_id!r} (the registry is in-memory;"
                " resubmit the spec to resume it from its journal)",
            )
            return
        if not streaming:
            self._send_json(200, run.status())
            return
        since = 0
        for part in query.split("&"):
            if part.startswith("since="):
                try:
                    since = max(0, int(part[len("since="):]))
                except ValueError:
                    self._error(400, "'since' must be an integer event cursor", field="since")
                    return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            for event in self.service.iter_campaign_events(run, since):
                self.wfile.write((canonical_json(event) + "\n").encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover - client went away
            pass


class VerificationServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`VerificationService`.

    Thread-per-request is exactly what the store's singleflight wants:
    concurrent requests for one uncached spec rendezvous inside
    ``VerdictStore.get_or_compute`` and trigger a single exploration.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: VerificationService, verbose: bool = False):
        super().__init__(address, ServiceHandler)
        self.service = service
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def build_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[VerificationService] = None,
    **service_kwargs,
) -> VerificationServer:
    """Bind a :class:`VerificationServer` (``port=0`` picks a free port)."""
    if service is None:
        service = VerificationService(**service_kwargs)
    return VerificationServer((host, port), service)


def start_in_thread(
    service: VerificationService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[VerificationServer, threading.Thread]:
    """Serve ``service`` on a daemon thread; returns ``(server, thread)``.

    The in-process embedding tests and benchmarks use — real sockets, no
    subprocess.  ``server.shutdown()`` stops the loop; ``service.close()``
    is still the caller's job.
    """
    server = VerificationServer((host, port), service)
    thread = threading.Thread(target=server.serve_forever, name="verification-server", daemon=True)
    thread.start()
    return server, thread
