"""Server CLI: ``python -m repro.service``.

Binds the verification service and serves until interrupted::

    python -m repro.service --port 8421 --store /var/lib/repro/store \\
        --journal /var/lib/repro/journals --backend serial

``--backend pool`` executes on a persistent in-process worker pool
(``--workers``); ``--backend distributed`` binds a TCP coordinator at
``--connect HOST:PORT`` and waits for worker daemons (launched separately
with ``python -m repro.engine.distributed worker --connect HOST:PORT``) to
enroll.  ``--store`` makes verdicts durable and warm-servable across
restarts; ``--journal`` makes in-flight campaigns resumable across
restarts (resubmit the same spec after a crash and only the remainder is
computed).

The chosen HTTP endpoint is printed as ``service: listening on URL`` (and
written to ``--port-file`` when given) so wrappers can discover an
ephemeral ``--port 0`` binding.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .app import VerificationServer, VerificationService


def _parse_endpoint(value: str):
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HTTP/JSON verification service over the campaign engine and verdict store.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    parser.add_argument("--port", type=int, default=8421, help="HTTP port (0 picks a free one)")
    parser.add_argument(
        "--backend",
        choices=("serial", "pool", "distributed"),
        default="serial",
        help="execution backend for fresh (uncached) work",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker processes for --backend pool"
    )
    parser.add_argument(
        "--connect",
        type=_parse_endpoint,
        default=("127.0.0.1", 0),
        metavar="HOST:PORT",
        help="coordinator endpoint for --backend distributed (worker daemons dial this)",
    )
    parser.add_argument(
        "--min-workers", type=int, default=1, help="daemons to wait for (--backend distributed)"
    )
    parser.add_argument("--store", default=None, metavar="PATH", help="verdict-store directory")
    parser.add_argument(
        "--store-entries", type=int, default=100_000, help="in-memory verdict index bound"
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH", help="campaign journal directory (enables resume)"
    )
    parser.add_argument(
        "--rate", type=float, default=None, help="per-client requests/second (unlimited if omitted)"
    )
    parser.add_argument("--burst", type=int, default=20, help="per-client burst size")
    parser.add_argument(
        "--port-file", default=None, metavar="PATH", help="write the bound HTTP port to this file"
    )
    parser.add_argument(
        "--wave-delay",
        type=float,
        default=0.0,
        help=argparse.SUPPRESS,  # test hook: seconds to sleep between campaign waves
    )
    parser.add_argument("--verbose", action="store_true", help="log every request")
    return parser


def build_service(args) -> VerificationService:
    """Construct the service (store, backend, limiter) an argv asked for."""
    from ..engine.backend import SerialBackend
    from ..engine.store import VerdictStore

    store = VerdictStore(args.store, max_entries=args.store_entries) if args.store else None
    pool = None
    backend = None
    if args.backend == "pool":
        from ..engine.pool import ExplorationPool

        pool = ExplorationPool(args.workers)
    elif args.backend == "distributed":
        from ..engine.distributed import DistributedBackend

        host, port = args.connect
        backend = DistributedBackend(host, port, min_workers=args.min_workers)
        print(f"service: distributed coordinator on {backend.address[0]}:{backend.address[1]}")
    else:
        # SerialBackend (not bare in-process calls) so campaign waves and
        # explorations share the process-persistent matcher cache.
        backend = SerialBackend()
    return VerificationService(
        store,
        pool=pool,
        backend=backend,
        backend_kind=args.backend,
        journal_dir=args.journal,
        rate=args.rate,
        burst=args.burst,
        wave_delay=args.wave_delay,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    service = build_service(args)
    server = VerificationServer((args.host, args.port), service, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"service: listening on http://{host}:{port}", flush=True)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(str(port))
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
