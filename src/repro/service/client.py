"""CLI client: ``python -m repro.service.client``.

Stdlib-only (``urllib``) client for the verification service, with exit
codes chosen for scripting::

    0  the verdict is ok (check passed / campaign fully succeeded)
    1  the verdict is a failure (the request worked; the algorithm didn't)
    2  the request was rejected (validation error, unknown id, bad usage)
    3  the service is unreachable or failed internally

Subcommands::

    check    POST /v1/check      one exhaustive check, verdict to stdout
    explore  POST /v1/explore    one exploration summary
    submit   POST /v1/campaigns  submit a campaign, print its id/status
    await    GET  /v1/campaigns/<id>      poll until the run completes
    tail     GET  /v1/campaigns/<id>/events  stream NDJSON progress
    stats    GET  /v1/stats
    health   GET  /healthz

A 429 from the service is retried automatically after its ``Retry-After``
delay (up to ``--retries`` times) — rate limiting is backpressure, not an
error, to a well-behaved client.

Examples::

    python -m repro.service.client check --algorithm fsync_phi2_l2_chir_k2 \\
        --grid 3x3 --model FSYNC --reduction grid+color
    id=$(python -m repro.service.client submit --algorithm fsync_phi2_l2_chir_k2 \\
        --campaign exhaustive_sweep --id-only)
    python -m repro.service.client tail "$id"
    python -m repro.service.client await "$id"
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

__all__ = ["ServiceClient", "ClientError", "main"]

#: Scripting exit codes (see module docstring).
EXIT_OK, EXIT_VERDICT_FAILED, EXIT_REJECTED, EXIT_UNAVAILABLE = 0, 1, 2, 3


class ClientError(Exception):
    """A request that did not produce a verdict; carries the exit code."""

    def __init__(self, exit_code: int, message: str) -> None:
        super().__init__(message)
        self.exit_code = exit_code


class ServiceClient:
    """Thin JSON-over-HTTP wrapper used by the CLI (and by tests/benchmarks)."""

    def __init__(
        self,
        url: str = "http://127.0.0.1:8421",
        *,
        client_id: Optional[str] = None,
        timeout: float = 300.0,
        retries: int = 5,
    ) -> None:
        self.url = url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout
        self.retries = retries

    # -- transport --------------------------------------------------------
    def _open(self, path: str, payload: Optional[dict] = None):
        headers = {"Content-Type": "application/json"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        attempts = 0
        while True:
            request = urllib.request.Request(
                self.url + path, data=data, headers=headers, method="POST" if data else "GET"
            )
            try:
                return urllib.request.urlopen(request, timeout=self.timeout)
            except urllib.error.HTTPError as exc:
                if exc.code == 429 and attempts < self.retries:
                    attempts += 1
                    time.sleep(max(1.0, float(exc.headers.get("Retry-After") or 1)))
                    continue
                raise ClientError(
                    EXIT_REJECTED if 400 <= exc.code < 500 else EXIT_UNAVAILABLE,
                    f"HTTP {exc.code}: {self._error_message(exc)}",
                ) from None
            except urllib.error.URLError as exc:
                raise ClientError(
                    EXIT_UNAVAILABLE, f"service unreachable at {self.url}: {exc.reason}"
                ) from None

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            error = json.loads(exc.read().decode("utf-8")).get("error", {})
        except Exception:  # noqa: BLE001 - non-JSON error body
            return exc.reason or "request failed"
        field = f" (field: {error['field']})" if "field" in error else ""
        return f"{error.get('message', exc.reason)}{field}"

    def request(self, path: str, payload: Optional[dict] = None) -> dict:
        with self._open(path, payload) as response:
            return json.load(response)

    # -- endpoints --------------------------------------------------------
    def check(self, spec: dict) -> dict:
        return self.request("/v1/check", spec)

    def explore(self, spec: dict) -> dict:
        return self.request("/v1/explore", spec)

    def submit(self, spec: dict) -> dict:
        return self.request("/v1/campaigns", spec)

    def status(self, campaign: str) -> dict:
        return self.request(f"/v1/campaigns/{campaign}")

    def stats(self) -> dict:
        return self.request("/v1/stats")

    def health(self) -> dict:
        return self.request("/healthz")

    def wait(self, campaign: str, poll: float = 0.5, timeout: Optional[float] = None) -> dict:
        """Poll until the campaign leaves ``running``; return its status."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            status = self.status(campaign)
            if status["state"] != "running":
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ClientError(EXIT_UNAVAILABLE, f"campaign {campaign} still running after timeout")
            time.sleep(poll)

    def tail(self, campaign: str, since: int = 0):
        """Yield progress events (pings filtered) until the terminal one."""
        with self._open(f"/v1/campaigns/{campaign}/events?since={since}") as response:
            for line in response:
                if not line.strip():
                    continue
                event = json.loads(line.decode("utf-8"))
                if event.get("event") == "ping":
                    continue
                yield event
                if event.get("event") in ("done", "error"):
                    return


# ---------------------------------------------------------------------------
# argv handling
# ---------------------------------------------------------------------------
def _parse_grid(value: str) -> Tuple[int, int]:
    try:
        m, n = value.lower().split("x")
        return int(m), int(n)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected MxN (e.g. 3x4), got {value!r}") from None


def _parse_ints(value: str) -> List[int]:
    try:
        return [int(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {value!r}") from None


def _parse_sizes(value: str) -> List[List[int]]:
    return [list(_parse_grid(part)) for part in value.split(",") if part.strip()]


def _spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--algorithm", required=True, help="registry algorithm name")
    parser.add_argument("--grid", type=_parse_grid, default=(3, 3), metavar="MxN", help="grid size")
    parser.add_argument("--model", default="FSYNC", help="FSYNC | SSYNC | ASYNC")
    parser.add_argument("--reduction", default="grid", help="reduction spec (e.g. grid+color+por)")
    parser.add_argument("--max-states", type=int, default=200_000, help="state budget")
    parser.add_argument("--kernel", default=None, help="object | packed | auto")


def _check_spec(args) -> Dict[str, object]:
    spec: Dict[str, object] = {
        "algorithm": args.algorithm,
        "m": args.grid[0],
        "n": args.grid[1],
        "model": args.model,
        "reduction": args.reduction,
        "max_states": args.max_states,
    }
    if args.kernel:
        spec["kernel"] = args.kernel
    return spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="CLI client for the verification service (see module docstring for exit codes).",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8421", help="service base URL")
    parser.add_argument("--client-id", default=None, help="X-Client-Id for rate-limit accounting")
    parser.add_argument("--timeout", type=float, default=300.0, help="per-request timeout (s)")
    parser.add_argument("--retries", type=int, default=5, help="automatic 429 retries")
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="one exhaustive check (exit 0 ok, 1 failed)")
    _spec_arguments(check)

    explore = commands.add_parser("explore", help="one exploration summary")
    _spec_arguments(explore)

    submit = commands.add_parser("submit", help="submit a campaign, print id/status")
    submit.add_argument("--spec", default=None, help="raw JSON campaign spec ('-' reads stdin)")
    submit.add_argument("--algorithm", default=None, help="registry algorithm name")
    submit.add_argument(
        "--campaign",
        default="grid_sweep",
        help="grid_sweep | stress_test | exhaustive_sweep | verify_algorithm",
    )
    submit.add_argument("--sizes", type=_parse_sizes, default=None, metavar="MxN,MxN,...")
    submit.add_argument("--model", default=None)
    submit.add_argument("--models", default=None, help="comma-separated (stress_test)")
    submit.add_argument("--seeds", type=_parse_ints, default=None, metavar="N,N,...")
    submit.add_argument("--reduction", default=None)
    submit.add_argument("--max-states", type=int, default=None)
    submit.add_argument("--kernel", default=None)
    submit.add_argument("--id-only", action="store_true", help="print just the campaign id")

    wait = commands.add_parser("await", help="poll a campaign until done (exit by verdict)")
    wait.add_argument("id", help="campaign id from submit")
    wait.add_argument("--poll", type=float, default=0.5, help="poll interval (s)")
    wait.add_argument("--wait-timeout", type=float, default=None, help="give up after (s)")

    tail = commands.add_parser("tail", help="stream NDJSON progress events to stdout")
    tail.add_argument("id", help="campaign id from submit")
    tail.add_argument("--since", type=int, default=0, help="event cursor to resume from")

    commands.add_parser("stats", help="service/store/backend counters")
    commands.add_parser("health", help="liveness probe")
    return parser


def _submit_spec(args) -> dict:
    if args.spec is not None:
        raw = sys.stdin.read() if args.spec == "-" else args.spec
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ClientError(EXIT_REJECTED, f"--spec is not valid JSON: {exc}") from None
    if args.algorithm is None:
        raise ClientError(EXIT_REJECTED, "submit needs --algorithm (or a full --spec)")
    spec: Dict[str, object] = {"algorithm": args.algorithm, "campaign": args.campaign}
    if args.sizes is not None:
        spec["sizes"] = args.sizes
    if args.model is not None:
        spec["model"] = args.model
    if args.models is not None:
        spec["models"] = [part.strip() for part in args.models.split(",") if part.strip()]
    if args.seeds is not None:
        spec["seeds"] = args.seeds
    if args.reduction is not None:
        spec["reduction"] = args.reduction
    if args.max_states is not None:
        spec["max_states"] = args.max_states
    if args.kernel is not None:
        spec["kernel"] = args.kernel
    return spec


def _print(payload: dict) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    client = ServiceClient(
        args.url, client_id=args.client_id, timeout=args.timeout, retries=args.retries
    )
    try:
        if args.command == "check":
            body = client.check(_check_spec(args))
            _print(body)
            return EXIT_OK if body["verdict"]["ok"] else EXIT_VERDICT_FAILED
        if args.command == "explore":
            _print(client.explore(_check_spec(args)))
            return EXIT_OK
        if args.command == "submit":
            status = client.submit(_submit_spec(args))
            if args.id_only:
                print(status["id"])
            else:
                _print(status)
            return EXIT_OK
        if args.command == "await":
            status = client.wait(args.id, poll=args.poll, timeout=args.wait_timeout)
            _print(status)
            if status["state"] != "done":
                return EXIT_UNAVAILABLE
            return EXIT_OK if status["ok"] else EXIT_VERDICT_FAILED
        if args.command == "tail":
            terminal = None
            for event in client.tail(args.id, since=args.since):
                json.dump(event, sys.stdout, sort_keys=True)
                sys.stdout.write("\n")
                sys.stdout.flush()
                terminal = event
            if terminal is None or terminal.get("event") == "error":
                return EXIT_UNAVAILABLE
            if terminal.get("event") == "done":
                return EXIT_OK if terminal.get("ok") else EXIT_VERDICT_FAILED
            return EXIT_OK
        if args.command == "stats":
            _print(client.stats())
            return EXIT_OK
        _print(client.health())
        return EXIT_OK
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
