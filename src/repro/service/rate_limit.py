"""Per-client token-bucket rate limiting for the verification service.

A verification service in front of the verdict store serves warm hits at
memcache speed — which means a single misbehaving client can saturate the
listener long before it saturates the engine.  The limiter is the classic
token bucket, one bucket per client key:

* a bucket holds at most ``burst`` tokens and refills continuously at
  ``rate`` tokens/second;
* every request costs one token; a request finding an empty bucket is
  rejected, and :meth:`TokenBucketLimiter.check` reports how long until
  the next token accrues — the service surfaces that as a 429 with a
  ``Retry-After`` header, so well-behaved clients back off precisely
  instead of hammering.

Client keys are chosen by the caller (the service uses the ``X-Client-Id``
header when present, else the peer address).  Buckets are created lazily
and idle buckets are pruned once they are full again (a full bucket is
indistinguishable from a fresh one, so pruning never changes decisions —
it only bounds memory under high client cardinality).

The clock is injectable (``clock=``, monotonic seconds) so tests can drive
refill deterministically.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional, Tuple

__all__ = ["TokenBucketLimiter", "RateDecision"]


class RateDecision:
    """The outcome of one admission check."""

    __slots__ = ("allowed", "retry_after")

    def __init__(self, allowed: bool, retry_after: float = 0.0) -> None:
        self.allowed = allowed
        #: Seconds until a retry can succeed (0 when ``allowed``).  Already
        #: rounded up to whole seconds for the ``Retry-After`` header.
        self.retry_after = retry_after

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.allowed


class TokenBucketLimiter:
    """``check(key)`` admission control with per-key token buckets.

    ``rate`` is the sustained requests/second each client may issue;
    ``burst`` is the bucket capacity (how far a client may run ahead of
    the sustained rate).  ``rate=None`` disables limiting — every check
    is allowed — so the service can expose one code path either way.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: int = 10,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (tokens, last_refill_timestamp)
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self.allowed = 0
        self.rejected = 0

    def check(self, key: str) -> RateDecision:
        """Spend one token for ``key``; report admission and retry delay."""
        if self.rate is None:
            with self._lock:
                self.allowed += 1
            return RateDecision(True)
        now = self._clock()
        with self._lock:
            tokens, stamp = self._buckets.get(key, (float(self.burst), now))
            tokens = min(float(self.burst), tokens + (now - stamp) * self.rate)
            if tokens >= 1.0:
                self._buckets[key] = (tokens - 1.0, now)
                self.allowed += 1
                self._prune(now)
                return RateDecision(True)
            self._buckets[key] = (tokens, now)
            self.rejected += 1
            # Whole seconds, rounded up: Retry-After is an integer header,
            # and advising a fractionally early retry would invite a second
            # rejection.
            retry_after = max(1.0, math.ceil((1.0 - tokens) / self.rate))
            return RateDecision(False, retry_after)

    def _prune(self, now: float, keep: int = 1024) -> None:
        """Drop refilled-to-full buckets once the table grows large.

        A full bucket decides exactly like a missing one, so this is pure
        memory hygiene (locked by the caller).
        """
        if len(self._buckets) <= keep:
            return
        assert self.rate is not None
        full = [
            key
            for key, (tokens, stamp) in self._buckets.items()
            if tokens + (now - stamp) * self.rate >= self.burst
        ]
        for key in full:
            del self._buckets[key]

    @property
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "allowed": self.allowed,
                "rejected": self.rejected,
                "clients": len(self._buckets),
            }
