"""Verification-as-a-service: HTTP/JSON front end over the engine.

The service wraps the campaign engine and the persistent verdict store
behind a small, stdlib-only HTTP API so verification can be driven from
anything that speaks JSON — CI jobs, shell scripts, other machines —
without importing the library:

* ``POST /v1/check`` / ``POST /v1/explore`` — one exhaustive check or
  exploration summary.  Both are store-backed: a warm hit is served
  without touching the engine and carries its ``store_stats`` channel.
* ``POST /v1/campaigns`` — submit a batch (grid sweep, stress test,
  exhaustive sweep, …); returns a content-addressed campaign id.
  ``GET /v1/campaigns/<id>`` polls status; ``GET
  /v1/campaigns/<id>/events`` streams NDJSON progress.  Campaigns are
  journal-backed: kill the server mid-run, restart it with the same
  ``--journal``, resubmit the same spec, and only the remainder runs.
* ``GET /v1/stats`` / ``GET /healthz`` — counters and liveness.

Cross-cutting: per-client token-bucket rate limiting (429 +
``Retry-After``), and validation that maps spec errors to 400s naming
the offending field.  ``python -m repro.service`` runs the server;
``python -m repro.service.client`` is the scripting client.

See ``docs/architecture.md`` ("The verification service") for the
endpoint table and guarantees.
"""

from .app import (
    CampaignRun,
    ServiceHandler,
    VerificationServer,
    VerificationService,
    build_server,
    start_in_thread,
)
from .client import ClientError, ServiceClient
from .rate_limit import RateDecision, TokenBucketLimiter

__all__ = [
    "CampaignRun",
    "ClientError",
    "RateDecision",
    "ServiceClient",
    "ServiceHandler",
    "TokenBucketLimiter",
    "VerificationServer",
    "VerificationService",
    "build_server",
    "start_in_thread",
]
