"""End-to-end service smoke: ``python -m repro.service.smoke``.

The CI gate (and ``make serve-smoke``) for the verification service.  It
exercises the *deployed* shape — a real server subprocess, the real CLI
client as subprocesses, real sockets — rather than in-process embedding:

1. start ``python -m repro.service`` against a temp store + journal;
2. ``client check`` a spec and assert the verdict is **byte-identical**
   (modulo the ``compare=False`` observability channels) to the serial
   engine run in this process;
3. re-run the same check and assert it was a warm hit — the response's
   ``store_stats.outcome`` says HIT and ``/v1/stats`` counts ``hits >= 1``;
4. submit a campaign, ``tail`` its NDJSON events, ``await`` it, fetch its
   status, and assert a resubmission is idempotent (same id, no rerun);
5. assert a malformed spec comes back 400 naming the offending field.

Exit 0 when all gates hold; exit 1 with a diagnostic on the first that
does not.  Stdlib-only, no network beyond loopback.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

ALGORITHM = "fsync_phi2_l2_chir_k2"
GRID = (3, 3)
REDUCTION = "grid+color"


class SmokeFailure(Exception):
    pass


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _client(url: str, *argv: str, expect: Optional[int] = 0) -> subprocess.CompletedProcess:
    command = [sys.executable, "-m", "repro.service.client", "--url", url, *argv]
    proc = subprocess.run(command, capture_output=True, text=True, timeout=300)
    if expect is not None and proc.returncode != expect:
        raise SmokeFailure(
            f"client {argv[0]!r} exited {proc.returncode} (wanted {expect});"
            f" stderr: {proc.stderr.strip()}"
        )
    return proc


def _wait_for_server(port_file: Path, server: subprocess.Popen, timeout: float = 60.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.poll() is not None:
            raise SmokeFailure(f"server exited early with code {server.returncode}")
        if port_file.exists() and port_file.read_text().strip():
            url = f"http://127.0.0.1:{port_file.read_text().strip()}"
            probe = _client(url, "health", expect=None)
            if probe.returncode == 0:
                return url
        time.sleep(0.1)
    raise SmokeFailure("server did not become healthy in time")


def _check_args() -> List[str]:
    return [
        "check",
        "--algorithm", ALGORITHM,
        "--grid", f"{GRID[0]}x{GRID[1]}",
        "--model", "FSYNC",
        "--reduction", REDUCTION,
    ]


def _local_verdict_json() -> str:
    """The serial engine's verdict for the smoke spec, canonically serialized."""
    from .. import algorithms
    from ..checking.model_checker import check_terminating_exploration
    from ..core.grid import Grid
    from ..engine.spec import canonical_json, result_payload

    result = check_terminating_exploration(
        algorithms.registry.get(ALGORITHM), Grid(*GRID), model="FSYNC", reduction=REDUCTION
    )
    return canonical_json(result_payload(result)["verdict"])


def main(argv: Optional[List[str]] = None) -> int:
    from ..engine.spec import canonical_json

    print("service-smoke: starting server against a temp store/journal", flush=True)
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        tmp_path = Path(tmp)
        port_file = tmp_path / "port"
        env = dict(os.environ)
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--host", "127.0.0.1", "--port", "0",
                "--store", str(tmp_path / "store"),
                "--journal", str(tmp_path / "journals"),
                "--port-file", str(port_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            url = _wait_for_server(port_file, server)
            print(f"service-smoke: server healthy at {url}", flush=True)

            # -- gate 1: cold check, byte-identical to the serial engine --
            cold = json.loads(_client(url, *_check_args()).stdout)
            http_verdict = canonical_json(cold["verdict"])
            _require(
                http_verdict == _local_verdict_json(),
                "HTTP verdict differs from the serial engine's for the same spec",
            )
            _require(cold["verdict"]["ok"] is True, "smoke spec unexpectedly failed its check")
            print("service-smoke: cold verdict byte-identical to the serial engine", flush=True)

            # -- gate 2: warm re-run is a store hit, not a recompute ------
            warm = json.loads(_client(url, *_check_args()).stdout)
            _require(
                canonical_json(warm["verdict"]) == http_verdict,
                "warm verdict differs from the cold one",
            )
            outcome = warm["observability"]["store_stats"]["outcome"]
            _require(outcome == "hit", f"expected a warm store hit, got outcome {outcome!r}")
            stats = json.loads(_client(url, "stats").stdout)
            _require(
                stats["store"]["hits"] >= 1,
                f"/v1/stats reports no store hits after a warm re-run: {stats['store']}",
            )
            print(
                f"service-smoke: warm hit served from the store (hits={stats['store']['hits']})",
                flush=True,
            )

            # -- gate 3: campaign submit -> tail -> await -> fetch --------
            submit = _client(
                url, "submit",
                "--algorithm", ALGORITHM,
                "--campaign", "grid_sweep",
                "--sizes", "2x3,3x3",
                "--model", "FSYNC",
                "--reduction", REDUCTION,
                "--id-only",
            )
            run_id = submit.stdout.strip()
            _require(bool(run_id), "submit --id-only printed no campaign id")
            events = [
                json.loads(line)
                for line in _client(url, "tail", run_id).stdout.splitlines()
                if line.strip()
            ]
            _require(
                events and events[-1]["event"] == "done" and events[-1]["ok"] is True,
                f"campaign event stream did not end in a passing 'done' event: {events[-1:]}",
            )
            _require(
                sum(1 for event in events if event["event"] == "task") == events[-1]["total"],
                "event stream is missing per-task events",
            )
            status = json.loads(_client(url, "await", run_id).stdout)
            _require(
                status["state"] == "done" and status["completed"] == status["total"],
                f"campaign status incomplete after await: {status}",
            )
            resubmit = json.loads(_client(
                url, "submit",
                "--algorithm", ALGORITHM,
                "--campaign", "grid_sweep",
                "--sizes", "2x3,3x3",
                "--model", "FSYNC",
                "--reduction", REDUCTION,
            ).stdout)
            _require(
                resubmit["id"] == run_id and resubmit["state"] == "done",
                "resubmitting an identical campaign was not idempotent",
            )
            print(
                f"service-smoke: campaign {run_id} completed"
                f" ({status['completed']}/{status['total']} tasks) and resubmission was idempotent",
                flush=True,
            )

            # -- gate 4: validation names the offending field -------------
            bad = _client(
                url, "check", "--algorithm", ALGORITHM, "--model", "WARPSYNC", expect=2
            )
            _require(
                "model" in bad.stderr,
                f"400 for a bad model did not name the field: {bad.stderr.strip()}",
            )
            print("service-smoke: malformed spec rejected with the offending field named", flush=True)
        except SmokeFailure as failure:
            server.terminate()
            output, _ = server.communicate(timeout=10)
            print(f"service-smoke: FAILED: {failure}", file=sys.stderr, flush=True)
            if output:
                print(f"--- server output ---\n{output}", file=sys.stderr, flush=True)
            return 1
        finally:
            if server.poll() is None:
                server.terminate()
                try:
                    server.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover - stuck server
                    server.kill()
    print("service-smoke: PASS", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
