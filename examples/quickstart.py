#!/usr/bin/env python3
"""Quickstart: run Algorithm 1 (two myopic luminous robots) on a grid.

Simulates the paper's simplest optimal algorithm — FSYNC, visibility two,
two colors, common chirality, two robots — on a 5x7 grid, prints the
execution frame by frame and checks the terminating-exploration property.

Usage::

    python examples/quickstart.py [m] [n]
"""

from __future__ import annotations

import sys

from repro import core
from repro.algorithms import get
from repro.analysis import collect_metrics
from repro.viz import render_configuration


def main() -> int:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    algorithm = get("fsync_phi2_l2_chir_k2")
    grid = core.Grid(m, n)
    print(f"Running {algorithm.summary()}")
    print(f"on a {m}x{n} grid (northwest corner at the top left)\n")

    result = core.run_fsync(algorithm, grid)

    visited = set()
    for index, configuration in enumerate(result.trace):
        for node, _colors in configuration:
            visited.add(node)
        print(f"round {index}")
        print(render_configuration(grid, configuration, visited=visited))
        print()

    metrics = collect_metrics(result)
    print(result.summary())
    print(
        f"rounds: {metrics.steps}, robot moves: {metrics.moves},"
        f" moves per node: {metrics.moves_per_node:.2f}"
    )
    print(f"terminating exploration achieved: {result.is_terminating_exploration}")
    return 0 if result.is_terminating_exploration else 1


if __name__ == "__main__":
    raise SystemExit(main())
