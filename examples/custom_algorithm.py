#!/usr/bin/env python3
"""Define a new exploration algorithm with the rule DSL and model-check it.

This example shows the full workflow a user of the library would follow to
study their own myopic-luminous-robot algorithm:

1. write the rules with the guard DSL (here using the ASCII guard art);
2. wrap them into an :class:`repro.core.Algorithm`;
3. simulate it under FSYNC;
4. exhaustively model-check it under the SSYNC adversary on a small grid —
   which, for this deliberately FSYNC-only design, finds the adversarial
   schedule that breaks it, illustrating why the paper needs the dedicated
   Section 4.3 algorithms for SSYNC/ASYNC.

Usage::

    python examples/custom_algorithm.py
"""

from __future__ import annotations

from repro import core
from repro.checking import check_terminating_exploration
from repro.core import Algorithm, G, Grid, Rule, Synchrony, W, parse_guard_art


def build_custom_algorithm() -> Algorithm:
    """A two-robot sweep written with the ASCII guard syntax.

    The robots reproduce Algorithm 1's behaviour but with visibility one,
    so (by Theorem 1) no amount of tweaking can make them SSYNC-correct.
    """
    rules = (
        Rule("follow_east", W, parse_guard_art(1, """
            _ . _
            G * o
            _ . _
        """), W, "E"),
        Rule("lead_east", G, parse_guard_art(1, """
            _ . _
            . * W
            _ . _
        """), G, "E"),
        Rule("drop_south", W, parse_guard_art(1, """
            _ . _
            G * #
            _ o _
        """), W, "S"),
        Rule("turn_west", G, parse_guard_art(1, """
            _ . _
            o * #
            _ W _
        """), G, "W"),
        Rule("follow_west", W, parse_guard_art(1, """
            _ . _
            o * G
            _ . _
        """), W, "W"),
        Rule("lead_west", G, parse_guard_art(1, """
            _ . _
            W * .
            _ . _
        """), G, "W"),
        Rule("drop_south_w", W, parse_guard_art(1, """
            _ . _
            # * G
            _ o _
        """), W, "S"),
        Rule("turn_east", G, parse_guard_art(1, """
            _ . _
            # * o
            _ W _
        """), G, "E"),
    )
    return Algorithm(
        name="custom_phi1_pair_sweep",
        synchrony=Synchrony.FSYNC,
        phi=1,
        colors=(G, W),
        chirality=True,
        k=2,
        rules=rules,
        initial_placement=lambda m, n: [((0, 0), G), ((0, 1), W)],
        min_m=2,
        min_n=3,
        description="User-defined 2-robot phi=1 sweep (FSYNC only, per Theorem 1)",
    )


def main() -> int:
    algorithm = build_custom_algorithm()
    print(f"Custom algorithm: {algorithm.summary()}")
    for rule in algorithm.rules:
        print(f"  {rule}")

    print("\n--- FSYNC simulation on 4x5 ---")
    result = core.run_fsync(algorithm, Grid(4, 5), tie_break="first")
    print(result.summary())

    print("\n--- Exhaustive SSYNC model checking on 3x4 ---")
    check = check_terminating_exploration(algorithm, Grid(3, 4), model="SSYNC")
    print(check.summary())
    if not check.ok:
        print(
            "\nAs predicted by Theorem 1 (two robots, visibility one), an adversarial"
            "\nsemi-synchronous scheduler defeats this algorithm even though the fully"
            "\nsynchronous run above succeeds.  Compare with the paper's k=3 algorithm:"
        )
        from repro.algorithms import get

        control = check_terminating_exploration(get("async_phi1_l3_chir_k3"), Grid(3, 4), model="SSYNC")
        print(control.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
