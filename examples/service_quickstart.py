#!/usr/bin/env python3
"""Quickstart: the verification service, end to end, in one process.

Starts the HTTP/JSON verification service on a free port (backed by a
temporary verdict store + campaign journal), then drives it through
``ServiceClient`` exactly as a remote consumer would:

1. ``POST /v1/check``  — cold verdict, computed by the engine;
2. the same check again — a warm store hit that never re-enters the engine;
3. ``POST /v1/campaigns`` — a small grid sweep, progress streamed live
   from ``GET /v1/campaigns/<id>/events``;
4. ``GET /v1/stats`` — the service/store counters behind it all.

For an always-on deployment use the server CLI instead::

    python -m repro.service --port 8421 --store verdicts/ --journal journal/
    python -m repro.service.client --url http://127.0.0.1:8421 check \\
        --algorithm fsync_phi2_l2_chir_k2 --grid 3x3 --model FSYNC

Usage::

    python examples/service_quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.engine.store import VerdictStore
from repro.service import ServiceClient, VerificationService, start_in_thread

SPEC = {
    "algorithm": "fsync_phi2_l2_chir_k2",
    "m": 3,
    "n": 3,
    "model": "FSYNC",
    "reduction": "grid+color",
}

CAMPAIGN = {
    "campaign": "grid_sweep",
    "algorithm": "fsync_phi2_l2_chir_k2",
    "sizes": [[2, 3], [2, 4], [3, 3]],
    "models": ["FSYNC"],
}


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="service-quickstart-") as tmp:
        store = VerdictStore(Path(tmp) / "store")
        service = VerificationService(store, journal_dir=Path(tmp) / "journal")
        server, _thread = start_in_thread(service)
        client = ServiceClient(server.url)
        print(f"service listening on {server.url}\n")

        try:
            # 1. Cold check: the engine explores the full state space.
            t0 = time.perf_counter()
            cold = client.check(SPEC)
            cold_ms = (time.perf_counter() - t0) * 1e3
            verdict = cold["verdict"]
            print(
                f"cold  check: ok={verdict['ok']} states={verdict['states_explored']}"
                f" outcome={cold['observability']['store_stats']['outcome']} ({cold_ms:.1f} ms)"
            )

            # 2. Warm check: answered from the verdict store, byte-identical.
            t0 = time.perf_counter()
            warm = client.check(SPEC)
            warm_ms = (time.perf_counter() - t0) * 1e3
            assert warm["verdict"] == cold["verdict"], "warm verdict must match cold"
            print(
                f"warm  check: ok={warm['verdict']['ok']}"
                f" outcome={warm['observability']['store_stats']['outcome']} ({warm_ms:.1f} ms)\n"
            )

            # 3. A campaign: submit, then stream progress events as they land.
            submitted = client.submit(CAMPAIGN)
            campaign_id = submitted["id"]
            print(f"campaign {campaign_id}: {submitted['total']} tasks submitted")
            for event in client.tail(campaign_id):
                kind = event.get("event")
                if kind == "task":
                    report = event["report"]["verdict"]
                    print(
                        f"  task {event['index']}: {report['m']}x{report['n']} [{report['model']}]"
                        f" ok={event['ok']} ({'resumed' if event['resumed'] else 'fresh'})"
                    )
                elif kind in ("done", "error"):
                    print(
                        f"campaign {kind}: ok={event.get('ok')}"
                        f" completed={event.get('completed')}/{event.get('total')}\n"
                    )

            # 4. The counters behind it.
            stats = client.stats()
            svc, st = stats["service"], stats.get("store") or {}
            print(
                f"service: requests={svc['requests']}"
                f" campaigns={svc['campaigns']['done']} done |"
                f" store: {st.get('hits', 0)} hits, {st.get('misses', 0)} misses"
            )
        finally:
            server.shutdown()
            service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
