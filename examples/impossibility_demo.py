#!/usr/bin/env python3
"""Theorem 1 demonstration: two myopic robots cannot explore a grid in SSYNC.

Runs the exact SSYNC-adversary refuter on a library of two-robot phi = 1
candidate algorithms (including the paper's own FSYNC Algorithm 3) and on
the paper's three-robot ASYNC algorithm as a control, printing the
adversary's witnesses.

Usage::

    python examples/impossibility_demo.py [m] [n]
"""

from __future__ import annotations

import sys

from repro.core import Grid
from repro.impossibility import demonstrate_theorem1


def main() -> int:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    print(
        "Theorem 1 (paper, Section 3): with visibility one and two robots, no algorithm\n"
        "solves terminating grid exploration under the semi-synchronous scheduler.\n"
    )
    grid = Grid(m, n)
    print(
        f"The {m}x{n} grid has {len(grid.inner_nodes())} inner nodes"
        f" (the proof works with grids of at least nine inner nodes; the exact refuter"
        f" below needs none of that slack).\n"
    )
    report = demonstrate_theorem1(m, n)
    print(report)
    if report.all_candidates_refuted and report.control_survives:
        print(
            "\nEvery two-robot candidate is defeated by the adversary, while the paper's"
            "\nthree-robot algorithm survives — matching Table 1's tight phi = 1 bounds."
        )
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
