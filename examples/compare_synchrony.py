#!/usr/bin/env python3
"""Compare the three synchrony models across all fourteen Table 1 settings.

For every registered algorithm this example runs

* an FSYNC execution,
* a randomized SSYNC execution (random non-empty activation subsets), and
* a randomized ASYNC execution (random Look/Compute/Move interleaving)

on the same grid, and prints a comparison table: number of robots, steps to
termination, robot moves and whether terminating exploration was achieved.
FSYNC-only algorithms are expected to fail (or misbehave) under the weaker
schedulers — that is exactly the gap the paper's Section 4.3 algorithms
close — so failures in those cells are informative, not bugs.

Usage::

    python examples/compare_synchrony.py [m] [n]
"""

from __future__ import annotations

import sys

from repro import core
from repro.algorithms import table1_rows


def run_model(algorithm, grid, model, seed=0):
    try:
        if model == "FSYNC":
            result = core.run_fsync(algorithm, grid, tie_break="first")
        elif model == "SSYNC":
            result = core.run_ssync(algorithm, grid, scheduler=core.RandomSubset(seed=seed))
        else:
            result = core.run_async(algorithm, grid, scheduler=core.RandomAsync(seed=seed))
    except core.ReproError as exc:
        return ("error", str(exc)[:30], "-")
    status = "ok" if result.is_terminating_exploration else (
        "no-term" if not result.terminated else "partial"
    )
    return (status, result.steps, result.total_moves)


def main() -> int:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    header = f"{'algorithm':<28}{'k':<3}{'model':<7}{'status':<9}{'steps':<7}{'moves':<7}"
    print(f"Synchrony comparison on a {m}x{n} grid")
    print(header)
    print("-" * len(header))
    for algorithm in table1_rows():
        mm, nn = max(m, algorithm.min_m), max(n, algorithm.min_n)
        grid = core.Grid(mm, nn)
        for model in ("FSYNC", "SSYNC", "ASYNC"):
            status, steps, moves = run_model(algorithm, grid, model)
            claimed = core.Synchrony.subsumes(algorithm.synchrony, model)
            marker = "" if claimed else "  (not claimed by the paper)"
            print(
                f"{algorithm.name:<28}{algorithm.k:<3}{model:<7}{status:<9}{steps!s:<7}{moves!s:<7}{marker}"
            )
    print(
        "\nNote: rows marked 'not claimed by the paper' run an FSYNC-only algorithm under a"
        " weaker scheduler; Table 1's lower bounds explain why they may fail there."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
