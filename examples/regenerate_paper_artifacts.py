#!/usr/bin/env python3
"""Regenerate the paper's Table 1 and a figure gallery in one go.

Produces, on stdout:

1. the regenerated Table 1 (paper bounds vs. this repository's verified
   algorithms), and
2. an ASCII gallery of the border-pivot figure for each algorithm.

This is the script behind EXPERIMENTS.md.

Usage::

    python examples/regenerate_paper_artifacts.py
"""

from __future__ import annotations

from repro.algorithms import table1_rows
from repro.analysis import build_table1, render_table1
from repro.core import Grid, SequentialAsync, run_async, run_fsync
from repro.viz.figures import FigureFrame, render_figure_sequence


def figure_gallery() -> None:
    print("\n=== Figure gallery: first border pivot of every algorithm ===")
    for algorithm in table1_rows():
        grid = Grid(max(4, algorithm.min_m), max(5, algorithm.min_n))
        if algorithm.synchrony == "FSYNC":
            result = run_fsync(algorithm, grid, tie_break="first")
        else:
            result = run_async(algorithm, grid, scheduler=SequentialAsync(), tie_break="first")
        start = next(
            (i for i, c in enumerate(result.trace) if any(node[1] == grid.n - 1 for node, _ in c)),
            0,
        )
        frames = [
            FigureFrame(f"step {index}", result.trace[index])
            for index in range(start, min(start + 5, len(result.trace)))
        ]
        print(f"\n--- {algorithm.summary()} (paper Section {algorithm.paper_section}) ---")
        print(render_figure_sequence(grid, frames))
        print(result.summary())


def main() -> int:
    print("=== Table 1: paper bounds vs. reproduced algorithms ===")
    rows = build_table1(quick=True)
    print(render_table1(rows))
    figure_gallery()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
