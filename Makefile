# Convenience targets for the repro library.
#
#   make verify      - lint, tier-1 test suite, then the smoke-benchmark
#                      guard (fails if the 3x3 FSYNC check regresses >3x
#                      against the BENCH_engine.json baseline)
#   make test        - tier-1 test suite only
#   make smoke       - smoke-benchmark guard only (CI uploads its output)
#   make lint        - ruff over the whole tree (config in pyproject.toml)
#   make chaos       - fault-injection parity check: worker kills, a
#                      coordinator crash, and a stateful-session kill with
#                      snapshot restore must all leave verdicts byte-identical
#                      to the serial engine (CI's chaos-smoke)
#   make serve-smoke - verification-service end-to-end smoke: real server
#                      subprocess + CLI client; verdict byte-parity with
#                      the serial engine, warm store hits, campaign
#                      submit/tail/await (CI's service-smoke)
#   make bench       - full engine benchmark; rewrites BENCH_engine.json
#                      (seed-vs-engine, cold-vs-cached-vs-sharded, cross-size
#                      cache reuse, pooled reuse, reduction quotients,
#                      distributed-vs-pooled, stateless-vs-stateful wave
#                      bytes, verdict-store warm hits, HTTP service warm-hit
#                      latency)

PYTHON ?= python
export PYTHONPATH := src

.PHONY: verify test smoke lint chaos serve-smoke bench

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) benchmarks/bench_engine.py --smoke

verify: lint test smoke

lint:
	ruff check .

chaos:
	$(PYTHON) -m repro.engine.distributed chaos

serve-smoke:
	$(PYTHON) -m repro.service.smoke

bench:
	$(PYTHON) benchmarks/bench_engine.py
