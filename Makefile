# Convenience targets for the repro library.
#
#   make verify  - tier-1 test suite plus a quick engine benchmark smoke
#   make test    - tier-1 test suite only
#   make bench   - full old-vs-new engine throughput benchmark

PYTHON ?= python
export PYTHONPATH := src

.PHONY: verify test bench

test:
	$(PYTHON) -m pytest -x -q

verify: test
	$(PYTHON) benchmarks/bench_engine.py --smoke

bench:
	$(PYTHON) benchmarks/bench_engine.py
