# Convenience targets for the repro library.
#
#   make verify  - tier-1 test suite plus the smoke-benchmark guard
#                  (fails if the 3x3 FSYNC check regresses >3x against
#                  the BENCH_engine.json baseline)
#   make test    - tier-1 test suite only
#   make bench   - full engine benchmark; rewrites BENCH_engine.json
#                  (seed-vs-engine, cold-vs-cached-vs-sharded, cross-size
#                  cache reuse)

PYTHON ?= python
export PYTHONPATH := src

.PHONY: verify test bench

test:
	$(PYTHON) -m pytest -x -q

verify: test
	$(PYTHON) benchmarks/bench_engine.py --smoke

bench:
	$(PYTHON) benchmarks/bench_engine.py
