"""Benchmark: seed checker vs the unified engine kernel (state throughput).

Compares three ways of exhaustively exploring the scheduler state space:

* **seed** — a faithful copy of the pre-engine model checker (one ad-hoc
  successor generator materialising a ``World`` per expansion, no
  memoization), kept here as the reference baseline;
* **engine (cold)** — the public :func:`repro.checking.explore_state_space`,
  building a fresh transition system per check;
* **engine (kernel reuse)** — one
  :class:`repro.engine.AlgorithmTransitionSystem` shared across repeated
  checks, the way the campaign engine and the refuter use it.

Run directly (``python benchmarks/bench_engine.py``, with ``--smoke`` for a
quick pass); it prints a table of state throughputs and fails loudly if the
engine does not beat the seed checker by at least 2x on the 3x3 FSYNC
check.
"""

from __future__ import annotations

import argparse
import sys
import time
from itertools import combinations, product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms import get
from repro.checking import explore_state_space
from repro.core import Grid
from repro.core.algorithm import Algorithm
from repro.engine import AlgorithmTransitionSystem, SchedulerState, explore, initial_state
from repro.engine.states import AsyncRobotState, world_from_state


# ---------------------------------------------------------------------------
# The seed checker, reproduced verbatim (pre-engine implementation)
# ---------------------------------------------------------------------------
def _seed_enabled_choices(algorithm: Algorithm, grid: Grid, state: SchedulerState):
    world = world_from_state(grid, state)
    choices = []
    for index, robot in enumerate(world.robots):
        actions = algorithm.distinct_actions(algorithm.matches_for_robot(world, robot))
        if actions:
            choices.append((index, actions))
    return choices


def _seed_apply_synchronous(
    state: SchedulerState, moves: Sequence[Tuple[int, Optional[str], Optional[Tuple[int, int]]]]
) -> SchedulerState:
    records = list(state.robots)
    for index, new_color, world_move in moves:
        record = records[index]
        pos = record.pos
        if world_move is not None:
            pos = (pos[0] + world_move[0], pos[1] + world_move[1])
        records[index] = AsyncRobotState(pos=pos, color=new_color if new_color else record.color)
    return SchedulerState.from_records(records)


def _seed_successors(algorithm: Algorithm, grid: Grid, state: SchedulerState, model: str):
    choices = _seed_enabled_choices(algorithm, grid, state)
    if not choices:
        return []
    successors = []
    if model == "FSYNC":
        for combo in product(*[actions for _, actions in choices]):
            moves = [
                (index, action.new_color, action.world_move)
                for (index, _), action in zip(choices, combo)
            ]
            successors.append(_seed_apply_synchronous(state, moves))
        return successors
    # SSYNC
    indices = [index for index, _ in choices]
    by_index = dict(choices)
    for size in range(1, len(indices) + 1):
        for subset in combinations(indices, size):
            for combo in product(*[by_index[index] for index in subset]):
                moves = [
                    (index, action.new_color, action.world_move)
                    for index, action in zip(subset, combo)
                ]
                successors.append(_seed_apply_synchronous(state, moves))
    return successors


def seed_explore(algorithm: Algorithm, grid: Grid, model: str) -> Dict[SchedulerState, List[SchedulerState]]:
    """The pre-engine state-space exploration (DFS stack, no memoization)."""
    root = initial_state(algorithm, grid)
    graph: Dict[SchedulerState, List[SchedulerState]] = {}
    stack = [root]
    while stack:
        state = stack.pop()
        if state in graph:
            continue
        succ = _seed_successors(algorithm, grid, state, model)
        graph[state] = succ
        for nxt in succ:
            if nxt not in graph:
                stack.append(nxt)
    return graph


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------
def _throughput(run, repetitions: int) -> Tuple[float, int]:
    """(states per second, states per run) over ``repetitions`` full checks."""
    states = run()  # warm-up, also yields the per-run state count
    start = time.perf_counter()
    for _ in range(repetitions):
        run()
    elapsed = time.perf_counter() - start
    return (states * repetitions) / elapsed, states


def bench_case(name: str, model: str, repetitions: int) -> dict:
    algorithm = get(name)
    grid = Grid(3, 3)

    def run_seed():
        return len(seed_explore(algorithm, grid, model))

    def run_engine_cold():
        return len(explore_state_space(algorithm, grid, model=model))

    kernel = AlgorithmTransitionSystem(algorithm, grid, model)

    def run_engine_kernel():
        return explore(kernel).num_states

    seed_rate, states = _throughput(run_seed, repetitions)
    cold_rate, _ = _throughput(run_engine_cold, repetitions)
    kernel_rate, _ = _throughput(run_engine_kernel, repetitions)
    return {
        "case": f"{name} 3x3 [{model}]",
        "states": states,
        "seed": seed_rate,
        "cold": cold_rate,
        "kernel": kernel_rate,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="quick pass (fewer repetitions)")
    parser.add_argument("--repetitions", type=int, default=None, help="explicit repetition count")
    args = parser.parse_args(argv)
    repetitions = args.repetitions if args.repetitions is not None else (20 if args.smoke else 150)

    rows = [
        bench_case("fsync_phi2_l2_chir_k2", "FSYNC", repetitions),
        bench_case("fsync_phi2_l2_chir_k2", "SSYNC", repetitions),
        bench_case("fsync_phi1_l2_chir_k3", "SSYNC", repetitions),
    ]

    header = f"{'case':38s} {'states':>6s} {'seed st/s':>10s} {'cold st/s':>10s} {'kernel st/s':>11s} {'cold x':>7s} {'kernel x':>8s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        cold_x = row["cold"] / row["seed"]
        kernel_x = row["kernel"] / row["seed"]
        print(
            f"{row['case']:38s} {row['states']:6d} {row['seed']:10.0f} {row['cold']:10.0f}"
            f" {row['kernel']:11.0f} {cold_x:6.2f}x {kernel_x:7.2f}x"
        )

    fsync = rows[0]
    speedup = max(fsync["cold"], fsync["kernel"]) / fsync["seed"]
    print(f"\n3x3 FSYNC check: engine is {speedup:.2f}x the seed checker's state throughput")
    if speedup < 2.0:
        print("FAIL: expected at least a 2x state-throughput improvement", file=sys.stderr)
        return 1
    print("OK: >= 2x state-throughput improvement")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
