"""Benchmark: engine exploration throughput, caches and sharding.

Tracks the perf trajectory of the exhaustive checker across PRs in a
machine-readable ledger, ``BENCH_engine.json`` at the repo root:

* **seed vs engine** (PR 1 trajectory) — a faithful copy of the pre-engine
  model checker (one ad-hoc successor generator materialising a ``World``
  per expansion, no memoization) against the unified kernel, on the 3x3
  suites;
* **4x4 FSYNC exhaustive check** (PR 2 trajectory) — the cold public path
  (fresh transition system and matcher per check) against the persistent
  :class:`~repro.engine.matcher.MatcherCache` fast path and against the
  sharded explorer with ``workers=4``;
* **cross-size cache reuse** — hit rates of one shared cache swept across
  a family of grid sizes (the matcher's keys are grid-size independent);
* **pooled reuse** (PR 3 trajectory) — two consecutive small-grid checks on
  one persistent :class:`~repro.engine.pool.ExplorationPool` against two
  cold ``explore_sharded`` calls that each pay pool startup; the pooled
  case must be faster and its second check must hit the worker caches
  warmed by the first;
* **reduction quotients** (PR 4 trajectory) — the suite ASYNC case
  (:data:`repro.engine.suites.REDUCTION_BENCH_CASE`) checked unreduced,
  under ``reduction="grid"`` and under ``reduction="grid+color+por"``:
  the composed pipeline must explore strictly fewer states than the grid
  quotient alone with byte-identical verdicts, and the quotient ratios and
  wall times land in the ledger;
* **distributed campaigns** (PR 5 trajectory) — one exhaustive sweep run
  through a persistent pool and through two local TCP worker daemons
  (:class:`~repro.engine.distributed.DistributedBackend`); reports must be
  identical to the serial engine's both ways, and the pooled-vs-distributed
  ratio is recorded honestly (on one core the TCP hop is pure overhead);
* **stateful waves** (PR 8 trajectory) — the suite ASYNC case explored
  through the same two TCP daemons on the stateless ``map_shards`` route
  and on the stateful session route
  (``DistributedBackend.open_exploration``); both merges are
  parity-enforced against the serial explorer, and the session route must
  move strictly fewer bytes on the wire per wave (resident frontiers +
  delta-only exchange), with the bytes-per-wave ratio in the ledger;
* **verdict store** (PR 9 trajectory) — the same exhaustive sweep run
  twice against one on-disk :class:`~repro.engine.store.VerdictStore`:
  the cold pass computes and durably records every verdict, the warm pass
  must be answered entirely from the store; both passes are
  parity-enforced against a store-less serial engine and the cold/warm
  wall ratio (the re-check speedup every later consumer inherits) lands
  in the ledger with a >= 10x gate;
* **packed kernel** (PR 6 trajectory) — the packed successor kernel
  (:mod:`repro.engine.packed`) against the object kernel on warm
  FSYNC/SSYNC/ASYNC cases, parity-enforced field by field before any
  number is recorded; plus the ``SchedulerState.from_records`` sort-key
  cache micro-benchmark (re-sorting already-seen records, the kernel's
  hottest object-path operation).

Run directly:

* ``python benchmarks/bench_engine.py`` — full pass; prints the tables,
  rewrites ``BENCH_engine.json``, and fails loudly unless the engine beats
  the seed checker by >= 2x on 3x3 FSYNC *and* the cache fast path beats
  the cold path by >= 2x on the 4x4 FSYNC exhaustive check;
* ``python benchmarks/bench_engine.py --smoke`` — quick pass wired into
  ``make verify``: re-measures the 3x3 FSYNC check and fails if it has
  regressed more than 3x against the recorded ``BENCH_engine.json``
  baseline (nothing is rewritten).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from itertools import combinations, product
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms import get
from repro.checking import check_terminating_exploration, explore_state_space
from repro.core import Grid
from repro.core.algorithm import Algorithm
from repro.engine import (
    REDUCTION_BENCH_CASE,
    AlgorithmTransitionSystem,
    DistributedBackend,
    ExplorationPool,
    MatcherCache,
    ParallelCampaignEngine,
    SchedulerState,
    VerdictStore,
    WorkerDaemon,
    exhaustive_check_tasks,
    explore,
    explore_sharded,
    initial_state,
)
from repro.engine.packed import PackedTransitionSystem
from repro.engine.states import AsyncRobotState, world_from_state

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: The case the ``--smoke`` regression guard is keyed on.
SMOKE_CASE = "fsync_phi2_l2_chir_k2 3x3 [FSYNC] kernel"
#: ``make verify`` fails when the smoke case is more than this factor slower
#: than the recorded baseline.
SMOKE_REGRESSION_FACTOR = 3.0
#: The same-machine reference the smoke guard normalizes by: the seed
#: checker runs the identical workload, so the *ratio* kernel/seed is
#: comparable across machines while absolute states/s are not.
SMOKE_REFERENCE_CASE = "fsync_phi2_l2_chir_k2 3x3 [FSYNC] seed"

#: Packed-vs-object kernel cases (warm-repetition protocol, one per model).
PACKED_BENCH_CASES = (
    ("fsync_phi1_l2_nochir_k5", 4, 4, "FSYNC"),
    ("fsync_phi2_l1_nochir_k4", 5, 5, "SSYNC"),
    ("async_phi2_l2_nochir_k4", 4, 4, "ASYNC"),
)

#: The packed-vs-object case the smoke guard re-measures (the FSYNC one —
#: smallest, so the guard stays cheap).
PACKED_SMOKE_CASE = PACKED_BENCH_CASES[0]

#: Warm verdict-store hits must beat the cold computing pass by at least
#: this factor on the exhaustive sweep (a same-machine ratio, so the gate
#: is hardware-independent like ``kernel_vs_seed``).
STORE_WARM_SPEEDUP_FLOOR = 10.0


# ---------------------------------------------------------------------------
# The seed checker, reproduced verbatim (pre-engine implementation)
# ---------------------------------------------------------------------------
def _seed_enabled_choices(algorithm: Algorithm, grid: Grid, state: SchedulerState):
    world = world_from_state(grid, state)
    choices = []
    for index, robot in enumerate(world.robots):
        actions = algorithm.distinct_actions(algorithm.matches_for_robot(world, robot))
        if actions:
            choices.append((index, actions))
    return choices


def _seed_apply_synchronous(
    state: SchedulerState, moves: Sequence[Tuple[int, Optional[str], Optional[Tuple[int, int]]]]
) -> SchedulerState:
    records = list(state.robots)
    for index, new_color, world_move in moves:
        record = records[index]
        pos = record.pos
        if world_move is not None:
            pos = (pos[0] + world_move[0], pos[1] + world_move[1])
        records[index] = AsyncRobotState(pos=pos, color=new_color if new_color else record.color)
    return SchedulerState.from_records(records)


def _seed_successors(algorithm: Algorithm, grid: Grid, state: SchedulerState, model: str):
    choices = _seed_enabled_choices(algorithm, grid, state)
    if not choices:
        return []
    successors = []
    if model == "FSYNC":
        for combo in product(*[actions for _, actions in choices]):
            moves = [
                (index, action.new_color, action.world_move)
                for (index, _), action in zip(choices, combo)
            ]
            successors.append(_seed_apply_synchronous(state, moves))
        return successors
    # SSYNC
    indices = [index for index, _ in choices]
    by_index = dict(choices)
    for size in range(1, len(indices) + 1):
        for subset in combinations(indices, size):
            for combo in product(*[by_index[index] for index in subset]):
                moves = [
                    (index, action.new_color, action.world_move)
                    for index, action in zip(subset, combo)
                ]
                successors.append(_seed_apply_synchronous(state, moves))
    return successors


def seed_explore(algorithm: Algorithm, grid: Grid, model: str) -> Dict[SchedulerState, List[SchedulerState]]:
    """The pre-engine state-space exploration (DFS stack, no memoization)."""
    root = initial_state(algorithm, grid)
    graph: Dict[SchedulerState, List[SchedulerState]] = {}
    stack = [root]
    while stack:
        state = stack.pop()
        if state in graph:
            continue
        succ = _seed_successors(algorithm, grid, state, model)
        graph[state] = succ
        for nxt in succ:
            if nxt not in graph:
                stack.append(nxt)
    return graph


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------
def _measure(run, repetitions: int) -> Tuple[float, int]:
    """(seconds per run, states per run) over ``repetitions`` full checks."""
    states = run()  # warm-up, also yields the per-run state count
    start = time.perf_counter()
    for _ in range(repetitions):
        run()
    elapsed = time.perf_counter() - start
    return elapsed / repetitions, states


def _case(
    name: str,
    wall_s: float,
    states: int,
    *,
    cache_hit_rate: Optional[float] = None,
    workers: Optional[int] = None,
) -> dict:
    row = {
        "case": name,
        "states": states,
        "wall_s": wall_s,
        "states_per_s": states / wall_s if wall_s else float("inf"),
    }
    if cache_hit_rate is not None:
        row["cache_hit_rate"] = cache_hit_rate
    if workers is not None:
        row["workers"] = workers
    return row


# ---------------------------------------------------------------------------
# Benchmark sections
# ---------------------------------------------------------------------------
def bench_seed_vs_engine(name: str, model: str, repetitions: int) -> List[dict]:
    """The PR-1 trajectory: seed checker vs cold engine vs reused kernel (3x3)."""
    algorithm = get(name)
    grid = Grid(3, 3)
    label = f"{name} 3x3 [{model}]"

    seed_s, states = _measure(lambda: len(seed_explore(algorithm, grid, model)), repetitions)
    cold_s, _ = _measure(lambda: len(explore_state_space(algorithm, grid, model=model)), repetitions)
    kernel = AlgorithmTransitionSystem(algorithm, grid, model)
    kernel_s, _ = _measure(lambda: explore(kernel).num_states, repetitions)
    return [
        _case(f"{label} seed", seed_s, states),
        _case(f"{label} cold", cold_s, states),
        _case(f"{label} kernel", kernel_s, states),
    ]


def bench_fsync_4x4(repetitions: int, workers: int) -> List[dict]:
    """The PR-2 trajectory: the 4x4 FSYNC exhaustive check, three ways.

    *cold* rebuilds the transition system and matcher per check (the public
    default), *cached* threads one persistent :class:`MatcherCache` through
    repeated checks (the campaign/sweep fast path), *sharded* fans the
    frontier over a ``workers``-process pool.
    """
    algorithm = get("fsync_phi2_l2_chir_k2")
    grid = Grid(4, 4)
    label = "fsync_phi2_l2_chir_k2 4x4 [FSYNC]"

    cold_s, states = _measure(
        lambda: check_terminating_exploration(algorithm, grid, model="FSYNC").states_explored,
        repetitions,
    )

    cache = MatcherCache()

    def cached_check() -> int:
        return check_terminating_exploration(
            algorithm, grid, model="FSYNC", cache=cache
        ).states_explored

    cached_s, _ = _measure(cached_check, repetitions)
    hit_rate = cache.stats.hit_rate

    # One sharded pass (pool startup dominates repetition timing; a single
    # timed run is how the checker is actually invoked).
    start = time.perf_counter()
    sharded_states = explore_sharded(algorithm, grid, "FSYNC", workers=workers).num_states
    sharded_s = time.perf_counter() - start
    # RuntimeError, not assert: parity must hold even under ``python -O``,
    # or a diverging run could be recorded as a passing baseline.
    if sharded_states != states:
        raise RuntimeError("sharded explorer diverged from the serial check")

    return [
        _case(f"{label} cold", cold_s, states),
        _case(f"{label} cached", cached_s, states, cache_hit_rate=hit_rate),
        _case(f"{label} sharded", sharded_s, states, workers=workers),
    ]


def bench_cross_size_cache() -> Tuple[List[dict], float]:
    """Hit rates of one shared cache swept across grid sizes.

    Returns the per-size rows plus the hit rate observed on the *last* size
    — reached with a cache warmed purely on other sizes, so any nonzero
    value demonstrates cross-size reuse.
    """
    algorithm = get("fsync_phi2_l2_chir_k2")
    sizes = [(3, 3), (3, 4), (4, 3), (3, 5), (4, 4), (4, 5), (5, 5)]
    cache = MatcherCache()
    rows: List[dict] = []
    final_rate = 0.0
    for m, n in sizes:
        grid = Grid(m, n)
        before = cache.stats.snapshot()
        start = time.perf_counter()
        result = check_terminating_exploration(algorithm, grid, model="FSYNC", cache=cache)
        wall = time.perf_counter() - start
        delta = cache.stats.delta_since(before)
        rows.append(
            _case(
                f"cross-size sweep {m}x{n} [FSYNC]",
                wall,
                result.states_explored,
                cache_hit_rate=delta.hit_rate,
            )
        )
        final_rate = delta.hit_rate
    return rows, final_rate


def bench_pooled_reuse(workers: int) -> Tuple[List[dict], float, float]:
    """The PR-3 trajectory: two consecutive checks, pooled vs cold sharded.

    The cold case runs ``explore_sharded`` twice, each call spawning and
    tearing down its own process pool — the regime where pool startup
    dominates small grids.  The pooled case runs the same two checks on one
    persistent :class:`ExplorationPool` (``serial_threshold=0`` so the
    workers are actually exercised): startup is paid once and the second
    check hits the worker caches warmed by the first.  Returns the rows
    plus the pooled-vs-cold speedup and the second check's hit rate.
    """
    algorithm = get("fsync_phi2_l2_chir_k2")
    grid = Grid(3, 3)
    label = "fsync_phi2_l2_chir_k2 3x3 [FSYNC]"
    serial_check = check_terminating_exploration(algorithm, grid, model="FSYNC")
    states = serial_check.states_explored

    start = time.perf_counter()
    for _ in range(2):
        explore_sharded(algorithm, grid, "FSYNC", workers=workers)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    with ExplorationPool(workers=workers, serial_threshold=0) as pool:
        first = check_terminating_exploration(algorithm, grid, model="FSYNC", pool=pool)
        second = check_terminating_exploration(algorithm, grid, model="FSYNC", pool=pool)
    pooled_s = time.perf_counter() - start
    if first != serial_check or second != serial_check:
        raise RuntimeError("pooled check diverged from the serial check")

    reuse_rate = second.matcher_stats["hit_rate"]
    return (
        [
            _case(f"{label} 2x cold sharded", cold_s, 2 * states, workers=workers),
            _case(
                f"{label} 2x pooled",
                pooled_s,
                2 * states,
                cache_hit_rate=reuse_rate,
                workers=workers,
            ),
        ],
        cold_s / pooled_s if pooled_s else float("inf"),
        reuse_rate,
    )


def _reduction_case(repetitions: int = 1) -> Dict[str, Tuple[float, "object"]]:
    """Wall time and CheckResult of the reduction bench case per spec."""
    name, m, n, model = REDUCTION_BENCH_CASE
    algorithm = get(name)
    grid = Grid(m, n)
    outcomes: Dict[str, Tuple[float, object]] = {}
    for spec in ("none", "grid", "grid+color+por"):
        # The verdict run is itself the first timed run, so the smoke guard
        # (repetitions=1) pays exactly one exploration per spec.
        start = time.perf_counter()
        result = check_terminating_exploration(algorithm, grid, model=model, reduction=spec)
        for _ in range(repetitions - 1):
            check_terminating_exploration(algorithm, grid, model=model, reduction=spec)
        wall = (time.perf_counter() - start) / repetitions
        outcomes[spec] = (wall, result)
    base = outcomes["none"][1]
    for spec, (_, result) in outcomes.items():
        if (result.terminates, result.explores, result.ok, result.counterexample) != (
            base.terminates,
            base.explores,
            base.ok,
            base.counterexample,
        ):
            # RuntimeError, not assert: verdict parity must hold even under
            # ``python -O`` or a diverging reduction becomes the baseline.
            raise RuntimeError(f"reduction={spec!r} changed the verdict of the bench case")
    return outcomes


def bench_reduction(repetitions: int) -> Tuple[List[dict], float, float]:
    """The PR-4 trajectory: the suite ASYNC case across reduction pipelines.

    Checks :data:`REDUCTION_BENCH_CASE` unreduced, under the grid quotient
    and under the full ``grid+color+por`` pipeline; verdicts must agree
    (enforced) and the composed pipeline must explore strictly fewer states
    than the grid quotient (gated by the caller).  Returns the rows plus
    the state quotient ratios none/grid and grid/(grid+color+por).
    """
    name, m, n, model = REDUCTION_BENCH_CASE
    label = f"{name} {m}x{n} [{model}]"
    outcomes = _reduction_case(repetitions)
    rows = [
        _case(f"{label} reduction={spec}", wall, result.states_explored)
        for spec, (wall, result) in outcomes.items()
    ]
    grid_states = outcomes["grid"][1].states_explored
    full_states = outcomes["grid+color+por"][1].states_explored
    none_states = outcomes["none"][1].states_explored
    return (
        rows,
        none_states / grid_states if grid_states else float("inf"),
        grid_states / full_states if full_states else float("inf"),
    )


def bench_distributed(daemon_workers: int = 2) -> Tuple[List[dict], float]:
    """The PR-5 trajectory: one exhaustive sweep, pooled vs TCP daemons.

    Runs the identical ``kind="check"`` task list through a persistent
    :class:`ExplorationPool` and through a :class:`DistributedBackend` fed
    by ``daemon_workers`` local TCP worker daemons (the same worker loop
    ``python -m repro.engine.distributed worker`` drives).  Both must
    reproduce the serial engine's reports exactly (enforced); the recorded
    ratio is honest — on a single-core container the TCP hop is pure
    overhead, and the number says by how much.  Returns the rows plus the
    pooled-vs-distributed wall ratio (> 1 means distributed was faster).
    """
    algorithm = get("fsync_phi2_l2_chir_k2")
    sizes = [(3, 3), (3, 4), (4, 3), (4, 4)]
    tasks = exhaustive_check_tasks(algorithm, sizes=sizes, reduction="grid")
    label = f"fsync_phi2_l2_chir_k2 exhaustive sweep x{len(tasks)} [FSYNC]"
    serial_reports = ParallelCampaignEngine(workers=1).run_tasks(algorithm, tasks)
    states = sum(report.steps for report in serial_reports)

    start = time.perf_counter()
    with ExplorationPool(workers=daemon_workers) as pool:
        pooled_reports = ParallelCampaignEngine(pool=pool).run_tasks(algorithm, tasks)
    pooled_s = time.perf_counter() - start

    start = time.perf_counter()
    with DistributedBackend(min_workers=daemon_workers) as backend:
        with WorkerDaemon(backend.host, backend.port, workers=daemon_workers).start():
            distributed_reports = ParallelCampaignEngine(backend=backend).run_tasks(
                algorithm, tasks
            )
    distributed_s = time.perf_counter() - start

    # RuntimeError, not assert: parity must hold even under ``python -O``,
    # or a diverging backend could be recorded as a passing baseline.
    if pooled_reports != serial_reports:
        raise RuntimeError("pooled campaign diverged from the serial engine")
    if distributed_reports != serial_reports:
        raise RuntimeError("distributed campaign diverged from the serial engine")

    return (
        [
            _case(f"{label} pooled", pooled_s, states, workers=daemon_workers),
            _case(f"{label} distributed", distributed_s, states, workers=daemon_workers),
        ],
        pooled_s / distributed_s if distributed_s else float("inf"),
    )


def bench_stateful_waves(daemon_workers: int = 2) -> Tuple[List[dict], float, dict]:
    """The PR-8 trajectory: bytes on the wire, stateless jobs vs sessions.

    Explores :data:`REDUCTION_BENCH_CASE` under the grid quotient through
    the same two TCP daemons twice — once on the stateless ``map_shards``
    route (every wave re-ships the shard payloads in full) and once on the
    stateful session route (frontiers stay resident worker-side; waves
    exchange intern-table references and only never-seen states travel
    whole).  Both merges are parity-enforced against the serial explorer
    before any number is recorded.  Returns the rows, the bytes-per-wave
    ratio (> 1 means the session route moved strictly fewer bytes), and
    the session's raw ``wire_stats``.
    """
    name, m, n, model = REDUCTION_BENCH_CASE
    algorithm = get(name)
    grid = Grid(m, n)
    label = f"{name} {m}x{n} [{model}] waves"
    serial = explore_sharded(algorithm, grid, model, workers=1, reduction="grid")

    start = time.perf_counter()
    with DistributedBackend(min_workers=daemon_workers, sessions=False) as backend:
        with WorkerDaemon(backend.host, backend.port, workers=daemon_workers).start():
            stateless = explore_sharded(algorithm, grid, model, backend=backend, reduction="grid")
        stateless_bytes = backend.stats["bytes_sent"] + backend.stats["bytes_received"]
    stateless_s = time.perf_counter() - start

    start = time.perf_counter()
    with DistributedBackend(min_workers=daemon_workers) as backend:
        with WorkerDaemon(backend.host, backend.port, workers=daemon_workers).start():
            stateful = explore_sharded(algorithm, grid, model, backend=backend, reduction="grid")
        stateful_bytes = backend.stats["bytes_sent"] + backend.stats["bytes_received"]
    stateful_s = time.perf_counter() - start

    # RuntimeError, not assert: parity must hold even under ``python -O``.
    # matcher_stats aggregates the remote workers' cache counters and is
    # the one documented difference between the routes; the graph fields
    # must be byte-identical.
    from dataclasses import replace

    if replace(stateless, matcher_stats=None) != replace(serial, matcher_stats=None):
        raise RuntimeError("stateless wave exploration diverged from the serial explorer")
    if replace(stateful, matcher_stats=None) != replace(serial, matcher_stats=None):
        raise RuntimeError("stateful wave exploration diverged from the serial explorer")
    wire = stateful.wire_stats
    if not wire or wire["waves"] < 1:
        raise RuntimeError("the stateful route recorded no session wire stats")

    # Both routes run the identical wave loop, so per-wave bytes compare on
    # the same denominator; the heartbeat traffic both routes carry rides
    # in the totals and only dilutes the ratio.
    waves = wire["waves"]
    rows = [
        _case(f"{label} stateless", stateless_s, stateless.num_states, workers=daemon_workers),
        _case(f"{label} stateful", stateful_s, stateful.num_states, workers=daemon_workers),
    ]
    rows[0]["bytes_on_wire"] = stateless_bytes
    rows[0]["bytes_per_wave"] = stateless_bytes / waves
    rows[1]["bytes_on_wire"] = stateful_bytes
    rows[1]["bytes_per_wave"] = stateful_bytes / waves
    ratio = stateless_bytes / stateful_bytes if stateful_bytes else float("inf")
    return rows, ratio, dict(wire)


def _store_sweep(store_path: Path) -> Tuple[int, int, float, float, dict]:
    """One exhaustive sweep cold (computing) then warm (store hits only).

    Runs the :func:`bench_distributed` task list through a serial engine
    backed by an on-disk :class:`VerdictStore` twice and returns
    ``(task_count, states, cold_s, warm_s, store_stats)``.  Both passes
    are parity-enforced against a store-less serial engine, and the warm
    pass must be answered entirely from the store.
    """
    algorithm = get("fsync_phi2_l2_chir_k2")
    sizes = [(3, 3), (3, 4), (4, 3), (4, 4)]
    tasks = exhaustive_check_tasks(algorithm, sizes=sizes, reduction="grid")
    serial_reports = ParallelCampaignEngine(workers=1).run_tasks(algorithm, tasks)
    states = sum(report.steps for report in serial_reports)

    with VerdictStore(store_path) as store:
        engine = ParallelCampaignEngine(workers=1, store=store)
        start = time.perf_counter()
        cold_reports = engine.run_tasks(algorithm, tasks)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm_reports = engine.run_tasks(algorithm, tasks)
        warm_s = time.perf_counter() - start
        stats = store.stats

    # RuntimeError, not assert: cached verdicts must stay byte-identical
    # to computed ones even under ``python -O``; ``store_stats`` rides
    # ``compare=False``, so ``==`` checks exactly the verdict fields.
    if cold_reports != serial_reports:
        raise RuntimeError("store-backed cold sweep diverged from the serial engine")
    if warm_reports != serial_reports:
        raise RuntimeError("warm store sweep diverged from the serial engine")
    if any(report.store_stats["outcome"] != "hit" for report in warm_reports):
        raise RuntimeError("warm sweep was not answered entirely from the store")
    return len(tasks), states, cold_s, warm_s, stats


def bench_store() -> Tuple[List[dict], float, dict]:
    """The PR-9 trajectory: the exhaustive sweep, cold vs warm verdict store.

    The cold pass computes and durably records every verdict of the
    :func:`bench_distributed` task list; the warm pass re-requests the
    identical tasks and must be served entirely from the store with
    byte-identical reports (enforced inside :func:`_store_sweep`).  The
    cold/warm ratio is the re-check speedup every later consumer of an
    already-checked spec inherits.  Returns the rows, that ratio, and the
    store's counter snapshot.
    """
    with tempfile.TemporaryDirectory(prefix="bench-verdict-store-") as root:
        task_count, states, cold_s, warm_s, stats = _store_sweep(Path(root) / "verdicts")
    label = f"fsync_phi2_l2_chir_k2 exhaustive sweep x{task_count} [FSYNC]"
    rows = [
        _case(f"{label} store cold", cold_s, states),
        _case(f"{label} store warm", warm_s, states),
    ]
    return rows, cold_s / warm_s if warm_s else float("inf"), stats


#: Warm requests timed per ``bench_service`` run (enough to average out
#: socket jitter without dominating the suite's wall clock).
SERVICE_WARM_REQUESTS = 50


def bench_service() -> Tuple[List[dict], float, float, dict]:
    """Warm-hit ``POST /v1/check`` latency through the HTTP service.

    Starts the in-process threaded server over a throwaway on-disk store,
    issues one cold check (computes and records the verdict), then times
    :data:`SERVICE_WARM_REQUESTS` warm requests end-to-end through real
    loopback HTTP.  Two gates are enforced as RuntimeErrors (they survive
    ``python -O``): every warm response must be served from the store —
    ``store_stats.outcome == "hit"`` and a frozen miss counter, i.e. a
    warm hit never re-enters the engine — and its verdict bytes must be
    identical to the cold response's.  Returns
    ``(rows, warm_latency_s, cold_s, store_stats)``.
    """
    from repro.engine.spec import canonical_json
    from repro.service import VerificationService, start_in_thread
    from repro.service.client import ServiceClient

    spec = {
        "algorithm": "fsync_phi2_l2_chir_k2",
        "m": 3,
        "n": 3,
        "model": "FSYNC",
        "reduction": "grid",
    }
    with tempfile.TemporaryDirectory(prefix="bench-service-") as root:
        store = VerdictStore(Path(root) / "verdicts")
        service = VerificationService(store)
        server, _ = start_in_thread(service)
        try:
            client = ServiceClient(server.url)
            start = time.perf_counter()
            cold = client.check(spec)
            cold_s = time.perf_counter() - start
            cold_verdict = canonical_json(cold["verdict"])
            misses_after_cold = store.stats["misses"]
            latencies = []
            for _ in range(SERVICE_WARM_REQUESTS):
                start = time.perf_counter()
                warm = client.check(spec)
                latencies.append(time.perf_counter() - start)
                if warm["observability"]["store_stats"]["outcome"] != "hit":
                    raise RuntimeError("a warm service check re-entered the engine")
                if canonical_json(warm["verdict"]) != cold_verdict:
                    raise RuntimeError("a warm HTTP verdict diverged from the cold one")
            if store.stats["misses"] != misses_after_cold:
                raise RuntimeError("the store recorded new misses during the warm requests")
            stats = store.stats
            states = cold["verdict"]["states_explored"]
        finally:
            server.shutdown()
            service.close()
    warm_s = sum(latencies) / len(latencies)
    label = "service POST /v1/check fsync_phi2_l2_chir_k2 3x3 [FSYNC]"
    rows = [
        _case(f"{label} cold", cold_s, states),
        _case(f"{label} warm hit", warm_s, states),
    ]
    return rows, warm_s, cold_s, stats


def _require_kernel_parity(reference, candidate, label: str) -> None:
    """RuntimeError (survives ``python -O``) unless the explorations match."""
    for field in ("model", "reduced", "states", "index", "succ", "edge_syms",
                  "root", "root_sym", "reduction", "reduction_stats"):
        if getattr(candidate, field) != getattr(reference, field):
            raise RuntimeError(f"packed kernel diverged from the object kernel on {label} ({field})")


def bench_packed(repetitions: int) -> Tuple[List[dict], Dict[str, float]]:
    """The PR-6 trajectory: packed vs object successor kernel, warm.

    Both kernels are measured under the same warm-repetition protocol the
    other "kernel" rows use (one warm-up run on a persistent transition
    system, then timed repetitions — the pool/daemon/sweep regime both
    kernels actually serve), and the packed exploration is parity-checked
    field by field against the object one before any number is recorded.
    Returns the rows plus the per-model speedup factors.
    """
    rows: List[dict] = []
    speedups: Dict[str, float] = {}
    for name, m, n, model in PACKED_BENCH_CASES:
        algorithm = get(name)
        grid = Grid(m, n)
        label = f"{name} {m}x{n} [{model}]"
        object_ts = AlgorithmTransitionSystem(algorithm, grid, model)
        packed_ts = PackedTransitionSystem(algorithm, grid, model)
        _require_kernel_parity(explore(object_ts), explore(packed_ts), label)
        # The larger state spaces need fewer repetitions to amortize noise.
        reps = repetitions if model == "FSYNC" else max(1, repetitions // 10)
        object_s, states = _measure(lambda: explore(object_ts).num_states, reps)
        packed_s, _ = _measure(lambda: explore(packed_ts).num_states, reps)
        speedups[model] = object_s / packed_s if packed_s else float("inf")
        rows.append(_case(f"{label} object kernel", object_s, states))
        rows.append(_case(f"{label} packed kernel", packed_s, states))
    return rows, speedups


def bench_from_records(repetitions: int) -> Tuple[List[dict], float]:
    """The ``SchedulerState.from_records`` sort-key cache micro-benchmark.

    Re-sorts the record tuples of a real ASYNC exploration two ways: with
    the records it already holds (whose :meth:`AsyncRobotState.key` caches
    are warm — the explorer's steady state, where successor construction
    reuses parent records) and with freshly constructed copies (cold
    caches, the pre-PR-6 cost).  Returns the rows plus warm-vs-cold
    speedup; "states" counts the states rebuilt per run.
    """
    name, m, n, model = PACKED_BENCH_CASES[2]
    algorithm = get(name)
    exploration = explore(AlgorithmTransitionSystem(algorithm, Grid(m, n), model))
    record_sets = [state.robots for state in exploration.states]

    def warm() -> int:
        for robots in record_sets:
            SchedulerState.from_records(robots)
        return len(record_sets)

    def cold() -> int:
        for robots in record_sets:
            SchedulerState.from_records(
                AsyncRobotState(r.pos, r.color, r.phase, r.snapshot, r.pending_color, r.pending_move)
                for r in robots
            )
        return len(record_sets)

    warm_s, states = _measure(warm, repetitions)
    cold_s, _ = _measure(cold, repetitions)
    label = f"from_records x{states} [{model} records]"
    return (
        [
            _case(f"{label} cached keys", warm_s, states),
            _case(f"{label} fresh records", cold_s, states),
        ],
        cold_s / warm_s if warm_s else float("inf"),
    )


def bench_sharded_wide(workers: int) -> List[dict]:
    """Serial vs sharded on the widest shared workload (8x8 SSYNC, k=3)."""
    algorithm = get("fsync_phi2_l2_nochir_k3")
    grid = Grid(8, 8)
    label = "fsync_phi2_l2_nochir_k3 8x8 [SSYNC]"

    start = time.perf_counter()
    serial = explore(AlgorithmTransitionSystem(algorithm, grid, "SSYNC")).num_states
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = explore_sharded(algorithm, grid, "SSYNC", workers=workers).num_states
    sharded_s = time.perf_counter() - start
    if sharded != serial:
        raise RuntimeError("sharded explorer diverged from the serial exploration")

    return [
        _case(f"{label} serial", serial_s, serial),
        _case(f"{label} sharded", sharded_s, sharded, workers=workers),
    ]


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
def _by_case(rows: List[dict]) -> Dict[str, dict]:
    return {row["case"]: row for row in rows}


def _print_table(rows: List[dict]) -> None:
    header = f"{'case':52s} {'states':>7s} {'wall ms':>9s} {'states/s':>10s} {'cache':>6s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        cache = f"{row['cache_hit_rate']:.0%}" if "cache_hit_rate" in row else "-"
        print(
            f"{row['case']:52s} {row['states']:7d} {row['wall_s'] * 1e3:9.2f}"
            f" {row['states_per_s']:10.0f} {cache:>6s}"
        )


def run_full(repetitions: int, workers: int, output: Path) -> int:
    rows: List[dict] = []
    rows += bench_seed_vs_engine("fsync_phi2_l2_chir_k2", "FSYNC", repetitions)
    rows += bench_seed_vs_engine("fsync_phi2_l2_chir_k2", "SSYNC", repetitions)
    rows += bench_seed_vs_engine("fsync_phi1_l2_chir_k3", "SSYNC", repetitions)
    rows += bench_fsync_4x4(repetitions, workers)
    cross_rows, cross_rate = bench_cross_size_cache()
    rows += cross_rows
    pooled_rows, pooled_x, pooled_reuse_rate = bench_pooled_reuse(workers)
    rows += pooled_rows
    rows += bench_sharded_wide(workers)
    reduction_rows, grid_quotient_x, por_quotient_x = bench_reduction(max(1, repetitions // 10))
    rows += reduction_rows
    distributed_rows, distributed_x = bench_distributed()
    rows += distributed_rows
    stateful_rows, stateful_wire_x, session_wire = bench_stateful_waves()
    rows += stateful_rows
    store_rows, store_x, store_stats = bench_store()
    rows += store_rows
    service_rows, service_warm_s, service_cold_s, service_store_stats = bench_service()
    rows += service_rows
    packed_rows, packed_x = bench_packed(repetitions)
    rows += packed_rows
    records_rows, records_x = bench_from_records(max(1, repetitions // 10))
    rows += records_rows

    by_case = _by_case(rows)
    engine_x = (
        by_case["fsync_phi2_l2_chir_k2 3x3 [FSYNC] seed"]["wall_s"]
        / by_case["fsync_phi2_l2_chir_k2 3x3 [FSYNC] kernel"]["wall_s"]
    )
    fsync44_x = (
        by_case["fsync_phi2_l2_chir_k2 4x4 [FSYNC] cold"]["wall_s"]
        / by_case["fsync_phi2_l2_chir_k2 4x4 [FSYNC] cached"]["wall_s"]
    )
    sharded_x = (
        by_case["fsync_phi2_l2_nochir_k3 8x8 [SSYNC] serial"]["wall_s"]
        / by_case["fsync_phi2_l2_nochir_k3 8x8 [SSYNC] sharded"]["wall_s"]
    )

    _print_table(rows)
    print(f"\n3x3 FSYNC: engine kernel is {engine_x:.2f}x the seed checker")
    print(f"4x4 FSYNC exhaustive check: persistent-cache fast path is {fsync44_x:.2f}x the cold path")
    print(
        f"8x8 SSYNC: sharded (workers={workers}) is {sharded_x:.2f}x serial"
        f" on {os.cpu_count()} CPU core(s)"
    )
    print(f"cross-size matcher-cache hit rate on the final sweep size: {cross_rate:.0%}")
    print(
        f"3x3 FSYNC twice: persistent pool is {pooled_x:.2f}x two cold sharded calls"
        f" ({pooled_reuse_rate:.0%} cache hits on the second check)"
    )
    reduction_label = "{} {}x{} [{}]".format(*REDUCTION_BENCH_CASE)
    print(
        f"{reduction_label}: grid+color+por explores {por_quotient_x:.2f}x fewer states"
        f" than the grid quotient (grid is {grid_quotient_x:.2f}x vs unreduced)"
    )
    print(
        f"exhaustive sweep over 2 TCP worker daemons: {distributed_x:.2f}x the pooled"
        " engine (identical reports; <1 means the TCP hop cost more than it bought)"
    )
    print(
        f"{reduction_label} over 2 TCP daemons: stateful sessions moved"
        f" {stateful_wire_x:.2f}x fewer bytes per wave than stateless jobs"
        f" ({session_wire['waves']} waves, {session_wire['rows_exchanged']} rows exchanged)"
    )
    print(
        f"exhaustive sweep against the verdict store: warm hits are {store_x:.2f}x"
        f" the cold computing pass ({store_stats['hits']} hits,"
        f" {store_stats['misses']} misses, byte-identical reports)"
    )
    print(
        f"HTTP service: warm /v1/check hits answer in {service_warm_s * 1e3:.2f} ms"
        f" end-to-end ({service_cold_s / service_warm_s:.1f}x the cold request,"
        f" {service_store_stats['hits']} hits, verdicts byte-identical, engine never re-entered)"
    )
    print(
        "packed kernel vs object kernel (warm): "
        + ", ".join(f"{model} {factor:.1f}x" for model, factor in packed_x.items())
    )
    print(f"from_records with cached sort keys: {records_x:.2f}x fresh records")

    ok = True
    if engine_x < 2.0:
        print("FAIL: expected >= 2x engine-vs-seed improvement on 3x3 FSYNC", file=sys.stderr)
        ok = False
    if fsync44_x < 2.0:
        print(
            "FAIL: expected >= 2x cached-vs-cold improvement on the 4x4 FSYNC exhaustive check",
            file=sys.stderr,
        )
        ok = False
    if cross_rate <= 0.0:
        print("FAIL: expected a nonzero cross-size matcher-cache hit rate", file=sys.stderr)
        ok = False
    if pooled_x <= 1.0:
        print(
            "FAIL: expected two pooled checks to beat two cold sharded calls on 3x3 FSYNC",
            file=sys.stderr,
        )
        ok = False
    if pooled_reuse_rate <= 0.0:
        print(
            "FAIL: expected a nonzero cross-exploration hit rate on the second pooled check",
            file=sys.stderr,
        )
        ok = False
    if por_quotient_x <= 1.0:
        print(
            "FAIL: expected grid+color+por to explore strictly fewer states than the"
            " grid quotient on the reduction bench case",
            file=sys.stderr,
        )
        ok = False
    if stateful_wire_x <= 1.0:
        print(
            "FAIL: expected the stateful session route to move strictly fewer bytes"
            " per wave than the stateless route on the reduction bench case",
            file=sys.stderr,
        )
        ok = False
    if store_x < STORE_WARM_SPEEDUP_FLOOR:
        print(
            f"FAIL: expected warm verdict-store hits to beat the cold pass by"
            f" >= {STORE_WARM_SPEEDUP_FLOOR:.0f}x on the exhaustive sweep"
            f" (measured {store_x:.1f}x)",
            file=sys.stderr,
        )
        ok = False
    if service_warm_s >= service_cold_s:
        print(
            "FAIL: expected a warm HTTP check (store hit) to answer faster than the"
            " cold computing request",
            file=sys.stderr,
        )
        ok = False
    for model in ("FSYNC", "SSYNC"):
        if packed_x[model] < 10.0:
            print(
                f"FAIL: expected the packed kernel to beat the object kernel by >= 10x"
                f" on the warm {model} bench case (measured {packed_x[model]:.1f}x)",
                file=sys.stderr,
            )
            ok = False
    if records_x <= 1.0:
        print(
            "FAIL: expected cached sort keys to beat fresh records in from_records",
            file=sys.stderr,
        )
        ok = False
    if not ok:
        # Leave the previously recorded baseline in place: a failing run
        # must never become the yardstick future smoke passes are held to.
        print(f"not updating {output} (gates failed)", file=sys.stderr)
        return 1

    payload = {
        "schema": 2,
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "workers": workers,
        "repetitions": repetitions,
        "cases": rows,
        "headline": {
            "engine_vs_seed_3x3_fsync": engine_x,
            "fsync_4x4_exhaustive_speedup": fsync44_x,
            "sharded_vs_serial_8x8_ssync": sharded_x,
            "cross_size_cache_hit_rate": cross_rate,
            "pooled_vs_cold_sharded_3x3_fsync_x2": pooled_x,
            "pooled_cross_exploration_hit_rate": pooled_reuse_rate,
            "reduction_bench_case": reduction_label,
            "reduction_grid_quotient_vs_unreduced": grid_quotient_x,
            "reduction_grid_color_por_vs_grid": por_quotient_x,
            "distributed_2daemons_vs_pooled_sweep": distributed_x,
            "stateful_vs_stateless_bytes_per_wave": stateful_wire_x,
            "stateful_session_wire": session_wire,
            "store_warm_vs_cold_sweep": store_x,
            "store_stats": store_stats,
            "service_warm_hit_latency_s": service_warm_s,
            "service_cold_check_s": service_cold_s,
            "service_warm_requests": SERVICE_WARM_REQUESTS,
            "service_store_stats": service_store_stats,
            "packed_vs_object": {
                "{} {}x{} [{}]".format(name, m, n, model): packed_x[model]
                for name, m, n, model in PACKED_BENCH_CASES
            },
            "from_records_cached_keys_vs_fresh": records_x,
        },
        # The guard compares the machine-independent *ratio* of the kernel
        # to the same-machine seed reference, not absolute states/s.
        "smoke_guard": {
            "case": SMOKE_CASE,
            "reference_case": SMOKE_REFERENCE_CASE,
            "kernel_vs_seed": engine_x,
            "states_per_s": by_case[SMOKE_CASE]["states_per_s"],
            "max_regression_factor": SMOKE_REGRESSION_FACTOR,
            # The packed-kernel floor the smoke guard re-measures: the
            # packed/object ratio on the FSYNC bench case, same-machine
            # normalized like kernel_vs_seed.
            "packed_case": "{} {}x{} [{}]".format(*PACKED_SMOKE_CASE),
            "packed_vs_object": packed_x["FSYNC"],
            # The verdict-store floor the smoke guard re-measures: warm
            # hits vs the cold computing pass on the exhaustive sweep,
            # gated on the absolute (machine-independent) ratio floor.
            "store_warm_vs_cold": store_x,
            "store_warm_floor": STORE_WARM_SPEEDUP_FLOOR,
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    print("OK: all benchmark gates passed")
    return 0


def run_smoke(repetitions: int, baseline_path: Path) -> int:
    """The ``make verify`` guard: 3x3 FSYNC regression + reduction soundness.

    Both the kernel case and the seed reference are re-measured on the
    *current* machine and compared as a ratio against the recorded ratio,
    so the guard tracks code regressions rather than hardware differences.
    The reduction guard then re-checks the suite ASYNC bench case: the
    ``grid+color+por`` pipeline must still explore strictly fewer states
    than the ``grid`` quotient with an unchanged verdict (the verdict
    parity is enforced inside :func:`_reduction_case`).  Finally the
    packed-kernel guard re-measures :data:`PACKED_SMOKE_CASE`: the packed
    exploration must stay field-identical to the object one (hard failure)
    and its warm speedup must stay within ``max_regression_factor`` of the
    recorded ``packed_vs_object`` baseline.  Last the verdict-store guard
    re-runs the exhaustive sweep cold and warm against a throwaway on-disk
    store: warm hits must stay byte-identical to computed reports
    (enforced inside :func:`_store_sweep`) and keep the absolute
    :data:`STORE_WARM_SPEEDUP_FLOOR` speedup.
    """
    algorithm = get("fsync_phi2_l2_chir_k2")
    grid = Grid(3, 3)
    seed_s, states = _measure(lambda: len(seed_explore(algorithm, grid, "FSYNC")), repetitions)
    kernel = AlgorithmTransitionSystem(algorithm, grid, "FSYNC")
    kernel_s, _ = _measure(lambda: explore(kernel).num_states, repetitions)
    current_ratio = seed_s / kernel_s
    print(
        f"smoke: {SMOKE_CASE}: {states / kernel_s:.0f} states/s,"
        f" {current_ratio:.1f}x the seed reference ({states} states)"
    )

    outcomes = _reduction_case()  # raises on a verdict divergence
    grid_states = outcomes["grid"][1].states_explored
    full_states = outcomes["grid+color+por"][1].states_explored
    print(
        "smoke: {} {}x{} [{}]: grid+color+por {} states vs grid {} states,"
        " verdict unchanged".format(*REDUCTION_BENCH_CASE, full_states, grid_states)
    )
    if full_states >= grid_states:
        print(
            "FAIL: grid+color+por no longer explores strictly fewer states than the"
            f" grid quotient on the reduction bench case ({full_states} >= {grid_states})",
            file=sys.stderr,
        )
        return 1

    # Packed-kernel guard: parity is enforced unconditionally; the speed
    # floor (below) additionally needs a recorded baseline.
    packed_name, packed_m, packed_n, packed_model = PACKED_SMOKE_CASE
    packed_algorithm = get(packed_name)
    packed_grid = Grid(packed_m, packed_n)
    packed_label = f"{packed_name} {packed_m}x{packed_n} [{packed_model}]"
    object_ts = AlgorithmTransitionSystem(packed_algorithm, packed_grid, packed_model)
    packed_ts = PackedTransitionSystem(packed_algorithm, packed_grid, packed_model)
    _require_kernel_parity(explore(object_ts), explore(packed_ts), packed_label)
    object_s, packed_states = _measure(lambda: explore(object_ts).num_states, repetitions)
    packed_s, _ = _measure(lambda: explore(packed_ts).num_states, repetitions)
    packed_ratio = object_s / packed_s if packed_s else float("inf")
    print(
        f"smoke: {packed_label} packed kernel: {packed_states / packed_s:.0f} states/s,"
        f" {packed_ratio:.1f}x the object kernel (parity verified)"
    )

    # Verdict-store guard: warm hits must stay byte-identical to computed
    # reports (enforced inside ``_store_sweep``) and keep the absolute
    # speedup floor — a same-machine ratio, so no baseline is needed.
    with tempfile.TemporaryDirectory(prefix="smoke-verdict-store-") as root:
        task_count, _, store_cold_s, store_warm_s, _ = _store_sweep(Path(root) / "verdicts")
    store_ratio = store_cold_s / store_warm_s if store_warm_s else float("inf")
    print(
        f"smoke: verdict store, exhaustive sweep x{task_count}: warm hits"
        f" {store_ratio:.1f}x the cold pass (parity verified)"
    )
    if store_ratio < STORE_WARM_SPEEDUP_FLOOR:
        print(
            f"FAIL: warm verdict-store hits fell below the"
            f" {STORE_WARM_SPEEDUP_FLOOR:.0f}x floor on the exhaustive sweep"
            f" ({store_ratio:.1f}x)",
            file=sys.stderr,
        )
        return 1

    if not baseline_path.exists():
        print(f"smoke: no baseline at {baseline_path}; run `make bench` to record one")
        return 0
    baseline = json.loads(baseline_path.read_text())
    guard = baseline.get("smoke_guard", {})
    recorded_ratio = guard.get("kernel_vs_seed")
    if not recorded_ratio:
        print("smoke: baseline has no kernel_vs_seed entry; run `make bench` to refresh it")
        return 0
    factor = guard.get("max_regression_factor", SMOKE_REGRESSION_FACTOR)
    floor = recorded_ratio / factor
    print(f"smoke: baseline ratio {recorded_ratio:.1f}x, regression floor {floor:.1f}x")
    if current_ratio < floor:
        print(
            f"FAIL: 3x3 FSYNC check regressed more than {factor:.0f}x against the"
            f" recorded baseline ({current_ratio:.1f}x < {floor:.1f}x vs seed)",
            file=sys.stderr,
        )
        return 1
    recorded_packed = guard.get("packed_vs_object")
    if recorded_packed:
        packed_floor = recorded_packed / factor
        print(
            f"smoke: packed baseline {recorded_packed:.1f}x,"
            f" regression floor {packed_floor:.1f}x"
        )
        if packed_ratio < packed_floor:
            print(
                f"FAIL: packed kernel regressed more than {factor:.0f}x against the"
                f" recorded baseline ({packed_ratio:.1f}x < {packed_floor:.1f}x vs object)",
                file=sys.stderr,
            )
            return 1
    else:
        print("smoke: baseline has no packed_vs_object entry; run `make bench` to refresh it")
    print("OK: within the regression budget")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="quick regression guard only")
    parser.add_argument("--repetitions", type=int, default=None, help="explicit repetition count")
    parser.add_argument("--workers", type=int, default=4, help="shard count for the sharded cases")
    parser.add_argument(
        "--output", type=Path, default=BENCH_PATH, help="where to write BENCH_engine.json"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        repetitions = args.repetitions if args.repetitions is not None else 20
        return run_smoke(repetitions, args.output)
    repetitions = args.repetitions if args.repetitions is not None else 100
    return run_full(repetitions, args.workers, args.output)


if __name__ == "__main__":
    raise SystemExit(main())
