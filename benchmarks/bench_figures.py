"""Benchmark: regenerate the paper's figures (Figs. 3-21).

Every figure of the evaluation section is an execution fragment; these
benchmarks re-run the corresponding algorithm, extract the fragment and
print it as ASCII art (run with ``-s`` to see the figures).  The checks
mirror ``tests/figures/test_paper_figures.py``; here the emphasis is on
regenerating and displaying the artefacts and on timing the simulations
that produce them.
"""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.analysis import follows_boustrophedon_route
from repro.core import Grid, SequentialAsync, run_async, run_fsync
from repro.viz.figures import FigureFrame, render_figure_sequence

FIGURES = [
    # (figure id, algorithm, model, grid, description)
    ("Fig. 3", "fsync_phi2_l2_chir_k2", "FSYNC", (5, 6), "boustrophedon route"),
    ("Figs. 4-5", "fsync_phi2_l2_chir_k2", "FSYNC", (4, 6), "Algorithm 1 turns"),
    ("Fig. 6", "fsync_phi2_l2_nochir_k3", "FSYNC", (4, 6), "Algorithm 2 turn"),
    ("Figs. 7-8", "fsync_phi1_l3_chir_k2", "FSYNC", (4, 5), "Algorithm 3 turns"),
    ("Fig. 9", "fsync_phi1_l3_nochir_k4", "FSYNC", (4, 5), "Algorithm 4 turn"),
    ("Figs. 10-11", "fsync_phi1_l2_chir_k3", "FSYNC", (4, 5), "Algorithm 5 turns"),
    ("Figs. 12-13", "async_phi2_l3_chir_k2", "ASYNC", (4, 5), "Algorithm 6 turns"),
    ("Fig. 14", "async_phi2_l3_nochir_k3", "ASYNC", (4, 5), "Algorithm 7 turn"),
    ("Figs. 15-16", "async_phi2_l2_chir_k3", "ASYNC", (4, 5), "Algorithm 8 turns"),
    ("Figs. 17-18", "async_phi2_l2_nochir_k4", "ASYNC", (4, 6), "Algorithm 9 turn"),
    ("Figs. 19-21", "async_phi1_l3_chir_k3", "ASYNC", (4, 5), "Algorithm 10 turns"),
]


def _run(name, model, size):
    algorithm = get(name)
    grid = Grid(*size)
    if model == "FSYNC":
        return run_fsync(algorithm, grid, tie_break="first")
    return run_async(algorithm, grid, scheduler=SequentialAsync(), tie_break="first")


@pytest.mark.parametrize("figure,name,model,size,desc", FIGURES, ids=[f[0] for f in FIGURES])
def test_regenerate_figure(benchmark, capsys, figure, name, model, size, desc):
    """Re-run the execution behind one paper figure and render its window."""
    result = benchmark.pedantic(lambda: _run(name, model, size), rounds=2, iterations=1)
    assert result.is_terminating_exploration

    # Render the window of the trace around the first border pivot: from the
    # first configuration touching the east border column to the first
    # configuration on the second row band.
    grid = result.grid
    start = next(
        (i for i, c in enumerate(result.trace) if any(node[1] == grid.n - 1 for node, _ in c)),
        0,
    )
    end = next(
        (i for i, c in enumerate(result.trace) if all(node[0] >= 1 for node, _ in c)),
        len(result.trace) - 1,
    )
    frames = [
        FigureFrame(f"{figure} frame {index}", result.trace[index])
        for index in range(start, min(end + 1, start + 8))
    ]
    with capsys.disabled():
        print(f"\n=== {figure} ({desc}), {name} on {grid.m}x{grid.n} [{model}] ===")
        print(render_figure_sequence(grid, frames))


def test_figure3_route_property(benchmark):
    """Figure 3: the exploration route is the north-to-south boustrophedon."""
    result = benchmark.pedantic(lambda: run_fsync(get("fsync_phi2_l2_chir_k2"), Grid(6, 7), tie_break="first"), rounds=3, iterations=1)
    assert follows_boustrophedon_route(result)
