"""Benchmark: round/move complexity scaling and simulator/checker throughput.

Extension beyond the paper's tables: measures that every algorithm performs
Theta(m * n) robot moves (printing the fitted moves-per-node constant), and
times the core engines (FSYNC simulator, ASYNC simulator, exhaustive model
checker) so that performance regressions are visible.
"""

from __future__ import annotations

import pytest

from repro.algorithms import table1_rows
from repro.analysis import round_complexity_sweep
from repro.analysis.scaling import fit_linear_in_nodes
from repro.checking import check_terminating_exploration
from repro.core import Grid, RandomAsync, run_async, run_fsync

ROWS = table1_rows()


@pytest.mark.parametrize("algorithm", ROWS, ids=[a.name for a in ROWS])
def test_scaling_sweep(benchmark, capsys, algorithm):
    """Fit the moves-per-node constant of one algorithm over a size sweep."""
    points = benchmark.pedantic(lambda: round_complexity_sweep(algorithm), rounds=1, iterations=1)
    slope = fit_linear_in_nodes(points, field="moves")
    with capsys.disabled():
        print(
            f"\n{algorithm.name}: {len(points)} sizes, moves ~ {slope:.2f} * (m*n),"
            f" largest grid {points[-1].m}x{points[-1].n} in {points[-1].steps} steps"
        )
    assert 0.5 < slope < 6.0


def test_fsync_simulator_throughput(benchmark, algorithms=None):
    """Time a single large FSYNC execution of Algorithm 1 (20x21 grid)."""
    from repro.algorithms import get

    algorithm = get("fsync_phi2_l2_chir_k2")
    result = benchmark.pedantic(lambda: run_fsync(algorithm, Grid(20, 21), record_trace=False), rounds=1, iterations=1)
    assert result.is_terminating_exploration


def test_async_simulator_throughput(benchmark):
    """Time a single large ASYNC execution of Algorithm 10 (12x13 grid)."""
    from repro.algorithms import get

    algorithm = get("async_phi1_l3_chir_k3")
    result = benchmark.pedantic(
        lambda: run_async(algorithm, Grid(12, 13), scheduler=RandomAsync(seed=7), record_trace=False),
        rounds=1,
        iterations=1,
    )
    assert result.is_terminating_exploration


def test_model_checker_throughput(benchmark):
    """Time the exhaustive ASYNC check of Algorithm 6 on a 3x5 grid."""
    from repro.algorithms import get

    algorithm = get("async_phi2_l3_chir_k2")
    result = benchmark.pedantic(lambda: check_terminating_exploration(algorithm, Grid(3, 5), model="ASYNC"), rounds=1, iterations=1)
    assert result.ok
