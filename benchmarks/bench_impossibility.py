"""Benchmark: the Theorem 1 lower-bound demonstration (Table 1, phi = 1 rows).

Times the exact SSYNC-adversary refutation of two-robot phi = 1 candidates
and the control check that the paper's three-robot algorithm survives.
"""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.core import Grid
from repro.impossibility import (
    candidate_two_robot_algorithms,
    demonstrate_theorem1,
    refute_terminating_exploration,
)

CANDIDATES = candidate_two_robot_algorithms()


@pytest.mark.parametrize("name", sorted(CANDIDATES), ids=sorted(CANDIDATES))
def test_refute_two_robot_candidate(benchmark, name):
    """Time the adversary's refutation of one 2-robot phi=1 candidate."""
    algorithm = CANDIDATES[name]

    def refute():
        witness = refute_terminating_exploration(algorithm, Grid(4, 4), model="SSYNC")
        assert witness is not None
        return witness

    witness = benchmark.pedantic(refute, rounds=1, iterations=1)
    assert witness.kind in ("terminal", "cycle")


def test_three_robots_survive(benchmark):
    """Time the control: the k=3 upper-bound algorithm resists the adversary."""
    algorithm = get("async_phi1_l3_chir_k3")

    def control():
        return refute_terminating_exploration(algorithm, Grid(3, 4), model="SSYNC")

    assert benchmark.pedantic(control, rounds=1, iterations=1) is None


def test_print_theorem1_report(capsys):
    """Regenerate and print the full Theorem 1 demonstration."""
    report = demonstrate_theorem1(4, 4)
    with capsys.disabled():
        print()
        print(report)
    assert report.all_candidates_refuted and report.control_survives
