"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.algorithms import all_algorithms


@pytest.fixture(scope="session")
def algorithms():
    return all_algorithms()
