"""Benchmark: regenerate Table 1 (the paper's headline table).

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s`` to see
the regenerated table.  Each row benchmark times the verification of one
Table 1 row (a grid-size sweep under the row's claimed synchrony model);
``test_print_table1`` prints the full paper-versus-measured table, which is
also recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.algorithms import table1_rows
from repro.analysis import build_table1, render_table1
from repro.core import Grid, RandomAsync, run_async
from repro.verification import grid_sweep

ROWS = table1_rows()


@pytest.mark.parametrize("algorithm", ROWS, ids=[a.name for a in ROWS])
def test_table1_row_fsync_sweep(benchmark, algorithm):
    """Time the FSYNC verification sweep of one Table 1 row."""

    def run_row():
        report = grid_sweep(algorithm, model="FSYNC")
        assert report.ok
        return report

    result = benchmark.pedantic(run_row, rounds=1, iterations=1)
    assert result.ok


ASYNC_ROWS = [a for a in ROWS if a.synchrony == "ASYNC"]


@pytest.mark.parametrize("algorithm", ASYNC_ROWS, ids=[a.name for a in ASYNC_ROWS])
def test_table1_row_async_execution(benchmark, algorithm):
    """Time one full ASYNC execution of each SSYNC/ASYNC row on a 6x7 grid."""
    grid = Grid(6, max(7, algorithm.min_n))

    def run_async_row():
        result = run_async(algorithm, grid, scheduler=RandomAsync(seed=1))
        assert result.is_terminating_exploration
        return result

    benchmark.pedantic(run_async_row, rounds=1, iterations=1)


def test_print_table1(capsys):
    """Regenerate and print the full Table 1 (paper vs. this repository)."""
    rows = build_table1(quick=True)
    table = render_table1(rows)
    with capsys.disabled():
        print("\n=== Table 1 — terminating grid exploration with myopic robots ===")
        print(table)
    reproduced = [row for row in rows if row.algorithm is not None]
    assert len(reproduced) >= 13
    assert all(row.matches_paper for row in reproduced)
